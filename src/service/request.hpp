#pragma once

// Request/response types of the mapping service: a `MapRequest` names an
// instance, a solver, and per-request `SolveOptions` (deadline, seed,
// quality target); a `MapResponse` carries the mapping plus the metadata
// a resource manager needs to audit the service (who served it, whether
// the deadline was met, where the time went).

#include <cstdint>
#include <memory>
#include <string>

#include "sim/mapping.hpp"
#include "workload/any_instance.hpp"

namespace match::obs {
struct SpanTimeline;
}

namespace match::service {

/// Which solver the request wants.  The registry adapts every mapping
/// heuristic in the library behind one `solve()` entry point.  Values
/// travel on the wire — only append, never renumber.
enum class SolverKind {
  kMatch,        ///< MaTCH cross-entropy (core::MatchOptimizer)
  kGa,           ///< FastMap-GA (baselines::GaOptimizer)
  kLocalSearch,  ///< restarted hill climbing (baselines::hill_climb)
  kMinMin,       ///< list heuristic (baselines::list_schedule)
  kMaxMin,
  kSufferage,
  kHeft,      ///< HEFT: upward-rank + insertion EFT (DAG workloads)
  kTopoList,  ///< topological-order list scheduling (DAG workloads)
  kDagCe,     ///< CE over priority permutations (core::solve_dag_ce)
};

const char* to_string(SolverKind kind);

/// Parses the names printed by `to_string`; throws `std::invalid_argument`
/// on unknown names (used by the CLI-facing example).
SolverKind parse_solver_kind(const std::string& name);

/// Per-request solve parameters.  Everything that affects the *result*
/// (seed, iteration budget, quality target) participates in the cache
/// key; the deadline does not — instead, deadline-truncated results are
/// never cached (see instance_cache.hpp).
struct SolveOptions {
  /// Base seed of the request's private RNG stream.
  std::uint64_t seed = 1;

  /// Completion budget in seconds, anchored at submission time (queue
  /// wait counts).  0 = unbounded.
  double deadline_seconds = 0.0;

  /// Stop early once the solver's best-so-far makespan ≤ this (0 = off).
  double target_cost = 0.0;

  /// Iteration budget override (MaTCH iterations / GA generations /
  /// local-search evaluations).  0 = the adapter's default.
  std::size_t max_iterations = 0;

  /// Allow this request to be served from / inserted into the cache.
  bool use_cache = true;
};

/// One mapping request.  The instance is shared (not copied) so requests
/// are cheap to enqueue and many requests can reference the same
/// workload; `workload::AnyInstance` carries either a TIG or a DAG, and
/// the service checks `Solver::supports` against its kind at admission.
struct MapRequest {
  /// Caller tag, echoed in the response.  The service does not interpret
  /// it (0 is fine; ids need not be unique).
  std::uint64_t id = 0;
  std::shared_ptr<const workload::AnyInstance> instance;
  SolverKind solver = SolverKind::kMatch;
  SolveOptions options;

  /// Optional span timeline to stamp queue-wait/solve crossings on.
  /// Non-owning: the submitter keeps it alive until the completion
  /// callback has run (the net front end parks a shared_ptr in the
  /// callback closure).  nullptr = untraced, zero overhead.
  obs::SpanTimeline* timeline = nullptr;
};

/// Who produced the response's mapping.
enum class ServedBy {
  kSolver,     ///< a fresh solver run
  kCache,      ///< solution cache hit
  kCoalesced,  ///< batched onto an identical in-flight request's run
};

const char* to_string(ServedBy served_by);

/// The service's answer to one MapRequest.
struct MapResponse {
  std::uint64_t id = 0;
  sim::Mapping mapping;
  double cost = 0.0;          ///< makespan of `mapping`
  std::size_t iterations = 0; ///< solver iterations spent (0 for cache hits)

  /// True iff the request finished after its deadline.  The mapping is
  /// still valid (best-so-far at cancellation), by the solver contract.
  bool deadline_missed = false;

  ServedBy served_by = ServedBy::kSolver;
  SolverKind solver = SolverKind::kMatch;

  /// Canonical fingerprint of (instance, solver, result-affecting
  /// options) — the cache key this request resolved to.
  std::uint64_t fingerprint = 0;

  /// Correlates this request's trace events (iteration/phase/service
  /// records in the configured EventSink).  Nonzero only when
  /// `served_by == kSolver`; cache hits and coalesced followers ran no
  /// solver of their own.
  std::uint64_t run_id = 0;

  double queue_seconds = 0.0;  ///< submission → worker pickup
  double solve_seconds = 0.0;  ///< worker pickup → completion
  double total_seconds = 0.0;  ///< submission → completion
};

}  // namespace match::service
