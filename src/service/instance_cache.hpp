#pragma once

// Solution cache of the mapping service.
//
// Key: a canonical 64-bit fingerprint of the problem — the TIG (node
// weights + edge list with weights), the resource graph, the comm-cost
// policy — mixed with the solver kind and every result-affecting solve
// option (seed, iteration budget, quality target) through the library's
// SplitMix64 mixer.  Two requests with equal fingerprints are solved
// identically (solvers are deterministic in their seed), so a cached
// mapping is byte-identical to what a fresh run would return.
//
// Deadlines deliberately do NOT participate in the key: a truncated run
// depends on machine load, so deadline-missed results are never inserted
// (the service enforces this), keeping cached entries load-independent.
//
// The cache is a mutex-guarded LRU with hit/miss/eviction counters; all
// entries are value copies, so readers never alias writer state.

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "service/request.hpp"
#include "sim/mapping.hpp"
#include "workload/any_instance.hpp"
#include "workload/instance.hpp"

namespace match::service {

/// Order-sensitive SplitMix64 chaining: each value is absorbed through a
/// full SplitMix64 round, so permuting inputs changes the digest.
class Fingerprinter {
 public:
  void mix(std::uint64_t value);
  void mix_double(double value);  ///< bit-pattern of the IEEE double
  std::uint64_t digest() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 0x9e3779b97f4a7c15ULL;
};

/// Canonical fingerprint of the problem data (TIG + platform + policy).
std::uint64_t fingerprint_instance(const workload::Instance& instance);

/// Canonical fingerprint of a DAG instance (task DAG + platform + policy).
std::uint64_t fingerprint_instance(const workload::DagInstance& instance);

/// Kind-composed fingerprint: the `WorkloadKind` discriminant is mixed
/// FIRST, then the per-kind digest, so a TIG and a DAG can never collide
/// by byte coincidence.  This is the digest the service cache and the
/// wire protocol's fingerprint references use.
std::uint64_t fingerprint_instance(const workload::AnyInstance& instance);

/// Full cache key: instance fingerprint ⊕ solver kind ⊕ result-affecting
/// options (seed, max_iterations, target_cost — not the deadline).
std::uint64_t cache_key(std::uint64_t instance_fingerprint, SolverKind solver,
                        const SolveOptions& options);

/// A cached solve result.
struct CachedSolution {
  sim::Mapping mapping;
  double cost = 0.0;
  std::size_t iterations = 0;
};

struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t insertions = 0;
  std::size_t evictions = 0;
  std::size_t size = 0;
  std::size_t capacity = 0;

  double hit_rate() const noexcept {
    const std::size_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Thread-safe LRU cache keyed by the 64-bit cache key.
class SolutionCache {
 public:
  /// `capacity` = max entries; 0 disables storage (every lookup misses).
  explicit SolutionCache(std::size_t capacity);

  /// Returns a copy of the entry and refreshes its recency.  Counts a hit
  /// or miss.
  std::optional<CachedSolution> lookup(std::uint64_t key);

  /// Inserts (or refreshes) an entry, evicting the least-recently-used
  /// entry when full.
  void insert(std::uint64_t key, CachedSolution solution);

  CacheStats stats() const;
  std::size_t size() const;
  void clear();

 private:
  using LruList = std::list<std::pair<std::uint64_t, CachedSolution>>;

  mutable std::mutex mutex_;
  std::size_t capacity_;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, LruList::iterator> index_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t insertions_ = 0;
  std::size_t evictions_ = 0;
};

}  // namespace match::service
