#include "service/instance_cache.hpp"

#include <bit>

#include "graph/dag.hpp"
#include "graph/graph.hpp"
#include "rng/splitmix64.hpp"

namespace match::service {

void Fingerprinter::mix(std::uint64_t value) {
  rng::SplitMix64 mixer(h_ ^ value);
  h_ = mixer.next();
}

void Fingerprinter::mix_double(double value) {
  mix(std::bit_cast<std::uint64_t>(value));
}

namespace {

void mix_graph(Fingerprinter& fp, const graph::Graph& g) {
  fp.mix(g.num_nodes());
  for (double w : g.node_weights()) fp.mix_double(w);
  fp.mix(g.num_edges());
  for (const graph::Edge& e : g.edge_list()) {
    fp.mix(e.u);
    fp.mix(e.v);
    fp.mix_double(e.weight);
  }
}

void mix_dag(Fingerprinter& fp, const graph::Dag& g) {
  fp.mix(g.num_nodes());
  for (double w : g.node_weights()) fp.mix_double(w);
  fp.mix(g.num_edges());
  for (const graph::Edge& e : g.edge_list()) {
    fp.mix(e.u);
    fp.mix(e.v);
    fp.mix_double(e.weight);
  }
}

}  // namespace

std::uint64_t fingerprint_instance(const workload::Instance& instance) {
  Fingerprinter fp;
  fp.mix(0x5449472d46503164ULL);  // domain tag
  mix_graph(fp, instance.tig.graph());
  mix_graph(fp, instance.resources.graph());
  fp.mix(static_cast<std::uint64_t>(instance.comm_policy));
  return fp.digest();
}

std::uint64_t fingerprint_instance(const workload::DagInstance& instance) {
  Fingerprinter fp;
  fp.mix(0x4441472d46503164ULL);  // domain tag ("DAG-FP1d")
  mix_dag(fp, instance.dag);
  mix_graph(fp, instance.resources.graph());
  fp.mix(static_cast<std::uint64_t>(instance.comm_policy));
  return fp.digest();
}

std::uint64_t fingerprint_instance(const workload::AnyInstance& instance) {
  Fingerprinter fp;
  fp.mix(static_cast<std::uint64_t>(instance.kind()));
  fp.mix(instance.is_tig() ? fingerprint_instance(instance.tig())
                           : fingerprint_instance(instance.dag()));
  return fp.digest();
}

std::uint64_t cache_key(std::uint64_t instance_fingerprint, SolverKind solver,
                        const SolveOptions& options) {
  Fingerprinter fp;
  fp.mix(instance_fingerprint);
  fp.mix(static_cast<std::uint64_t>(solver));
  fp.mix(options.seed);
  fp.mix(options.max_iterations);
  fp.mix_double(options.target_cost);
  // deadline_seconds intentionally excluded: truncated results are never
  // cached, so the key must not fragment on the latency budget.
  return fp.digest();
}

SolutionCache::SolutionCache(std::size_t capacity) : capacity_(capacity) {}

std::optional<CachedSolution> SolutionCache::lookup(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->second;
}

void SolutionCache::insert(std::uint64_t key, CachedSolution solution) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(solution);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.emplace_front(key, std::move(solution));
  index_.emplace(key, lru_.begin());
  ++insertions_;
}

CacheStats SolutionCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.insertions = insertions_;
  s.evictions = evictions_;
  s.size = lru_.size();
  s.capacity = capacity_;
  return s;
}

std::size_t SolutionCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

void SolutionCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

}  // namespace match::service
