#pragma once

// MappingService: the solvers as a long-lived concurrent service.
//
//   submit() ──► bounded MPMC queue ──► worker pumps (parallel::ThreadPool)
//                                          │
//                                          ├─ solution cache (LRU, keyed by
//                                          │  canonical fingerprint)
//                                          ├─ in-flight coalescing (identical
//                                          │  concurrent requests share one
//                                          │  solver run)
//                                          └─ SolverRegistry dispatch, with
//                                             per-request RNG stream and a
//                                             deadline StopFn anchored at
//                                             submission time
//
// Deadline accounting contract: every response either met its deadline or
// is flagged `deadline_missed` (and counted in ServiceStats) while still
// carrying a valid best-so-far mapping.  `deadline_missed` is computed
// from the service's own completion timestamp, so
// `deadline_missed == (total_seconds > deadline_seconds)` exactly.
//
// Determinism: a request's result depends only on (instance, solver,
// options) — never on worker count or scheduling — because solvers are
// seed-deterministic and cache/coalescing return exactly what a fresh run
// would.  (Deadline-truncated runs are the documented exception: where a
// run is cut off depends on load, which is why they are never cached.)

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/ce_params.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "service/deadline.hpp"
#include "service/instance_cache.hpp"
#include "service/request.hpp"
#include "service/solver_registry.hpp"

namespace match::service {

struct ServiceConfig {
  /// Worker pump threads (each owns one ThreadPool slot).  ≥ 1.
  std::size_t workers = 2;

  /// Bounded request-queue capacity; `submit` blocks while full
  /// (admission control / back-pressure).  ≥ 1.
  std::size_t queue_capacity = 1024;

  /// Solution-cache capacity in entries; 0 disables caching.
  std::size_t cache_capacity = 4096;

  /// Batch identical concurrent requests onto one solver run.
  bool coalesce = true;

  /// Service-wide solver knobs (`core::CeCommonParams`), threaded into
  /// every built-in adapter through the registry: `eval_backend` picks
  /// the batch-evaluation kernel (`kAuto` probes the CPU and picks the
  /// widest SIMD tier; `kScalar` forces the bit-compatible reference
  /// kernel), `rho`/`zeta`/`sampler`/`parallel` tune the CE-family
  /// solvers.  One struct, one set of field names and defaults — the
  /// same knobs a library caller sets on `MatchParams` directly.
  /// Per-request telemetry reports the resolved backend as a
  /// `solver.backend.<name>` counter.
  core::CeCommonParams solver_defaults;

  /// Optional event sink shared by every request: service lifecycle
  /// events (enqueue, cache hit/miss, coalesce, deadline expiry) plus the
  /// per-run solver events (iterations, phases, fallback draws), all
  /// correlated by `MapResponse::run_id`.  Must be thread-safe and
  /// outlive the service; null disables tracing.
  obs::EventSink* sink = nullptr;

  void validate() const;
};

/// A point-in-time snapshot of the service's counters.
struct ServiceStats {
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t deadline_misses = 0;
  std::size_t coalesced = 0;
  /// Solver runs cancelled before their first batch, answered with a
  /// single fallback evaluation (run after the deadline already expired
  /// — a sign the deadline budget is too tight for even one iteration).
  std::size_t fallback_draws = 0;

  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_evictions = 0;
  std::size_t cache_size = 0;

  std::size_t queue_depth = 0;       ///< requests waiting right now
  std::size_t peak_queue_depth = 0;  ///< high-water mark
  std::size_t in_flight = 0;         ///< requests being processed right now

  double p50_latency_seconds = 0.0;
  double p99_latency_seconds = 0.0;
  double mean_latency_seconds = 0.0;

  double cache_hit_rate() const noexcept {
    const std::size_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }
};

class MappingService {
 public:
  explicit MappingService(ServiceConfig config = {});

  /// Drains outstanding work and joins the workers.
  ~MappingService();

  MappingService(const MappingService&) = delete;
  MappingService& operator=(const MappingService&) = delete;

  /// Enqueues a request; blocks while the queue is full.  Throws
  /// `std::invalid_argument` on a null instance or unknown solver, and
  /// `std::runtime_error` after `shutdown()`.
  std::future<MapResponse> submit(MapRequest request);

  /// Completion hook of `try_submit`, invoked exactly once on a worker
  /// thread.  A failed solve (adapter threw) delivers a response with an
  /// *empty* mapping — callback callers own the error surface, so the
  /// service reports the failure in-band instead of through a future's
  /// exception channel.
  using CompletionFn = std::function<void(MapResponse&&)>;

  /// Non-blocking admission: enqueues and returns true, or returns
  /// false immediately when the queue is full or the service stopped
  /// accepting — never blocks, which is what an event-loop front end
  /// needs (a full queue there is a shed decision, not a wait).
  /// Throws like `submit` on an invalid request.
  bool try_submit(MapRequest request, CompletionFn on_complete);

  /// Convenience: submit + wait.
  MapResponse solve(MapRequest request);

  /// Blocks until every submitted request has completed.
  void drain();

  /// Stops accepting requests, drains outstanding work, joins workers.
  /// Idempotent.
  void shutdown();

  ServiceStats stats() const;

  /// Requests queued but not yet picked up — the cheap accessor the
  /// admission layer polls per request (`stats()` copies the latency
  /// vector and is snapshot-priced, not per-request-priced).
  std::size_t queue_depth() const;

  /// Requests picked up but not yet completed — with `queue_depth` the
  /// two saturation gauges the reactor samples each housekeeping tick.
  std::size_t in_flight() const;

  /// Projected queue wait for a newly admitted request: queue depth ×
  /// mean solve time / workers, estimated from the
  /// `service.solve_seconds` histogram in the metrics registry (falling
  /// back to `service.latency_seconds` before the first completion
  /// lands there).  0 until any request has completed.  Deadline-aware
  /// admission rejects a request whose remaining budget is below this.
  double projected_wait_seconds() const;

  const ServiceConfig& config() const noexcept { return config_; }
  const SolverRegistry& registry() const noexcept { return registry_; }

  /// The service-wide metrics registry: request counters, the
  /// `service.latency_seconds` / `service.solve_seconds` histograms, and
  /// every counter/histogram the solvers record (e.g.
  /// `solver.fallback_draws`, `match.phase.*_seconds`).
  const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }

  /// Mutable registry access for co-located subsystems (the network
  /// front end records its `net.*` counters here so one `/metrics`
  /// scrape covers the whole serving stack).
  obs::MetricsRegistry& metrics() noexcept { return metrics_; }

 private:
  struct Pending {
    MapRequest request;
    std::promise<MapResponse> promise;
    CompletionFn on_complete;  ///< non-null: callback path (try_submit)
    Clock::time_point submitted_at;
    Deadline deadline;
    std::uint64_t run_id = 0;
  };

  /// Leader/follower state for coalesced identical requests.
  struct InFlight {
    std::shared_future<CachedSolution> result;
  };

  Pending make_pending(MapRequest request);
  void note_enqueued(std::uint64_t run_id, SolverKind solver);
  void pump();
  MapResponse process(Pending& pending);
  void record_completion(const MapResponse& response);

  ServiceConfig config_;
  SolverRegistry registry_;
  SolutionCache cache_;
  obs::MetricsRegistry metrics_;
  std::atomic<std::uint64_t> next_run_id_{1};

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_not_empty_;
  std::condition_variable queue_not_full_;
  std::condition_variable queue_drained_;
  std::deque<Pending> queue_;
  bool accepting_ = true;
  bool closed_ = false;
  std::size_t processing_ = 0;  ///< popped but not yet completed

  mutable std::mutex inflight_mutex_;
  std::unordered_map<std::uint64_t, InFlight> inflight_;

  mutable std::mutex stats_mutex_;
  std::size_t submitted_ = 0;
  std::size_t completed_ = 0;
  std::size_t deadline_misses_ = 0;
  std::size_t coalesced_ = 0;
  std::size_t peak_queue_depth_ = 0;
  std::vector<double> latencies_;

  /// Owned last-initialized / first-destroyed is irrelevant here because
  /// shutdown() explicitly sequences queue close before pool join.
  std::unique_ptr<parallel::ThreadPool> pool_;
};

}  // namespace match::service
