#pragma once

// Deadline support for the mapping service.
//
// A Deadline is an absolute point on the steady clock (or "never").  The
// service anchors each request's deadline at *submission* time, so queue
// wait counts against the budget, and turns it into a cooperative
// cancellation hook (`StopFn`) that the solvers poll once per iteration
// (core::MatchOptimizer / baselines::GaOptimizer / core::run_ce).  The
// cancellation contract: when the hook fires, the solver stops at the next
// iteration boundary and returns its best-so-far solution — always a valid
// complete mapping, never a partial one.

#include <atomic>
#include <chrono>
#include <functional>
#include <limits>
#include <optional>

#include "core/stop.hpp"

namespace match::service {

using Clock = std::chrono::steady_clock;

/// An absolute completion deadline, or "unlimited".
class Deadline {
 public:
  /// No deadline: never expires.
  Deadline() = default;

  /// Expires `seconds` from now; non-positive values expire immediately.
  static Deadline in(double seconds) {
    return Deadline(Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(seconds)));
  }

  /// Expires at an explicit time point (used to anchor at submission).
  static Deadline at(Clock::time_point when) { return Deadline(when); }

  static Deadline never() { return {}; }

  bool unlimited() const noexcept { return !at_.has_value(); }

  bool expired() const {
    return at_.has_value() && Clock::now() >= *at_;
  }

  /// Seconds until expiry (negative once past); +inf when unlimited.
  double remaining_seconds() const {
    if (!at_.has_value()) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(*at_ - Clock::now()).count();
  }

  std::optional<Clock::time_point> time_point() const noexcept { return at_; }

 private:
  explicit Deadline(Clock::time_point when) : at_(when) {}

  std::optional<Clock::time_point> at_;
};

/// Deprecated alias; use `match::StopFn` (core/stop.hpp).  Polled
/// between iterations; returns true when the solver should stop and
/// report best-so-far.
using StopFn = match::StopFn;

/// Builds a StopFn that fires when `deadline` expires or `*cancel` is set
/// (cancel may be null).  Unlimited deadline + null cancel yields an empty
/// function, so solvers skip the poll entirely.
inline StopFn make_stop_fn(Deadline deadline,
                           const std::atomic<bool>* cancel = nullptr) {
  if (deadline.unlimited() && cancel == nullptr) return {};
  return [deadline, cancel] {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return true;
    }
    return deadline.expired();
  };
}

}  // namespace match::service
