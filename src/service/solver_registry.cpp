#include "service/solver_registry.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "baselines/ga.hpp"
#include "baselines/heft.hpp"
#include "baselines/list_heuristics.hpp"
#include "baselines/local_search.hpp"
#include "core/dag_ce.hpp"
#include "core/matchalgo.hpp"
#include "rng/rng.hpp"
#include "sim/evaluator.hpp"
#include "sim/platform.hpp"
#include "sim/schedule_eval.hpp"

namespace match::service {
namespace {

/// MaTCH adapter: library defaults overlaid with the registry-wide
/// common knobs, with the request's iteration budget, quality target and
/// deadline hook threaded through.
class MatchSolver final : public Solver {
 public:
  explicit MatchSolver(const core::CeCommonParams& defaults)
      : defaults_(defaults) {}

  const char* name() const override { return "match"; }

  SolveOutcome solve(const workload::AnyInstance& any,
                     const SolveOptions& options,
                     const match::SolverContext& ctx) const override {
    const workload::Instance& instance = any.tig();
    const sim::Platform platform = instance.make_platform();
    const sim::CostEvaluator eval(instance.tig, platform);

    core::MatchParams params;
    static_cast<core::CeCommonParams&>(params) = defaults_;
    if (options.max_iterations != 0) {
      params.max_iterations = options.max_iterations;
    }
    params.target_cost = options.target_cost;

    core::MatchOptimizer optimizer(eval, params);

    rng::Rng rng(options.seed);
    match::SolverContext run_ctx = ctx;
    run_ctx.with_rng(rng);
    const core::MatchResult r = optimizer.run(run_ctx);

    SolveOutcome out;
    static_cast<match::RunSummary&>(out) = r;
    out.mapping = r.best_mapping;
    return out;
  }

 private:
  core::CeCommonParams defaults_;
};

/// FastMap-GA adapter.  The paper's tuned configuration (population 500 ×
/// 1000 generations) is an offline budget; a service answering a request
/// stream needs something bounded, so the adapter scales the population
/// with the instance (≥ 32, 4n) and defaults to 150 generations unless
/// the request overrides the budget.
class GaSolver final : public Solver {
 public:
  explicit GaSolver(const core::CeCommonParams& defaults)
      : defaults_(defaults) {}

  const char* name() const override { return "fastmap-ga"; }

  SolveOutcome solve(const workload::AnyInstance& any,
                     const SolveOptions& options,
                     const match::SolverContext& ctx) const override {
    const workload::Instance& instance = any.tig();
    const sim::Platform platform = instance.make_platform();
    const sim::CostEvaluator eval(instance.tig, platform);

    baselines::GaParams params;
    static_cast<core::CeCommonParams&>(params) = defaults_;
    params.population = std::max<std::size_t>(32, 4 * instance.size());
    params.generations = options.max_iterations != 0 ? options.max_iterations
                                                     : 150;
    params.target_cost = options.target_cost;

    baselines::GaOptimizer optimizer(eval, params);

    rng::Rng rng(options.seed);
    match::SolverContext run_ctx = ctx;
    run_ctx.with_rng(rng);
    const baselines::GaResult r = optimizer.run(run_ctx);

    SolveOutcome out;
    static_cast<match::RunSummary&>(out) = r;
    out.mapping = r.best_mapping;
    return out;
  }

 private:
  core::CeCommonParams defaults_;
};

/// Restarted hill climbing, adapted to cooperative cancellation by
/// slicing the evaluation budget: the stop hook cuts the current slice
/// short (hill_climb polls it per restart and per descent sweep), and
/// the best mapping across slices is kept.  Each slice draws its RNG
/// from the request's master stream, so the full (uncancelled) run is a
/// deterministic function of the seed.
class LocalSearchSolver final : public Solver {
 public:
  const char* name() const override { return "local-search"; }

  SolveOutcome solve(const workload::AnyInstance& any,
                     const SolveOptions& options,
                     const match::SolverContext& ctx) const override {
    const workload::Instance& instance = any.tig();
    const sim::Platform platform = instance.make_platform();
    const sim::CostEvaluator eval(instance.tig, platform);
    const std::size_t n = instance.size();

    const std::size_t budget =
        options.max_iterations != 0 ? options.max_iterations : 20000;
    const std::size_t slice = std::max<std::size_t>(n * n, 1000);

    rng::Rng master(options.seed);
    SolveOutcome out;
    out.best_cost = std::numeric_limits<double>::infinity();

    std::size_t spent = 0;
    while (spent < budget) {
      // The first slice always starts: on immediate cancellation
      // hill_climb itself evaluates one fallback draw, keeping the
      // best-so-far contract (and emitting the fallback_draw event).
      rng::Rng slice_rng(master.bits());
      match::SolverContext slice_ctx = ctx;
      slice_ctx.with_rng(slice_rng);
      const baselines::SearchResult r = baselines::hill_climb(
          eval, std::min(slice, budget - spent), slice_ctx);
      if (r.best_cost < out.best_cost) {
        out.best_cost = r.best_cost;
        out.mapping = r.best_mapping;
      }
      spent += r.evaluations;
      if (r.cancelled) {
        out.cancelled = true;
        break;
      }
      if (options.target_cost > 0.0 && out.best_cost <= options.target_cost) {
        break;
      }
    }
    out.iterations = spent;
    return out;
  }
};

/// List-heuristic adapter (Min-min / Max-min / Sufferage): deterministic
/// constructive mappings, fast enough that the deadline hook is never
/// consulted.
class ListSolver final : public Solver {
 public:
  explicit ListSolver(baselines::ListRule rule) : rule_(rule) {}

  const char* name() const override { return baselines::to_string(rule_); }

  SolveOutcome solve(const workload::AnyInstance& any,
                     const SolveOptions& /*options*/,
                     const match::SolverContext& /*ctx*/) const override {
    const workload::Instance& instance = any.tig();
    const sim::Platform platform = instance.make_platform();
    const sim::CostEvaluator eval(instance.tig, platform);
    const baselines::SearchResult r = baselines::list_schedule(eval, rule_);

    SolveOutcome out;
    static_cast<match::RunSummary&>(out) = r;
    out.iterations = r.evaluations;
    out.mapping = r.best_mapping;
    return out;
  }

 private:
  baselines::ListRule rule_;
};

/// Deterministic DAG list schedulers (HEFT, topological order): no RNG,
/// no iteration loop — the stop hook is never consulted, mirroring the
/// TIG list heuristics.
class DagListSolver final : public Solver {
 public:
  enum class Rule { kHeft, kTopo };

  explicit DagListSolver(Rule rule) : rule_(rule) {}

  const char* name() const override {
    return rule_ == Rule::kHeft ? "heft" : "topo-list";
  }

  bool supports(workload::WorkloadKind kind) const override {
    return kind == workload::WorkloadKind::kDag;
  }

  SolveOutcome solve(const workload::AnyInstance& any,
                     const SolveOptions& /*options*/,
                     const match::SolverContext& /*ctx*/) const override {
    const workload::DagInstance& instance = any.dag();
    const sim::Platform platform = instance.make_platform();
    const sim::ScheduleEvaluator eval(instance.dag, platform);
    const baselines::DagScheduleResult r =
        rule_ == Rule::kHeft ? baselines::heft_schedule(eval)
                             : baselines::topo_list_schedule(eval);

    SolveOutcome out;
    static_cast<match::RunSummary&>(out) = r;
    out.mapping = r.best_mapping;
    return out;
  }

 private:
  Rule rule_;
};

/// CE-over-priorities adapter for DAG workloads: the registry-wide
/// common knobs seed the CE parameters, the request supplies budget,
/// target and seed, and the context's stop hook gives it the same
/// cancellation semantics as every other iterative solver.
class DagCeSolver final : public Solver {
 public:
  explicit DagCeSolver(const core::CeCommonParams& defaults)
      : defaults_(defaults) {}

  const char* name() const override { return "dag-ce"; }

  bool supports(workload::WorkloadKind kind) const override {
    return kind == workload::WorkloadKind::kDag;
  }

  SolveOutcome solve(const workload::AnyInstance& any,
                     const SolveOptions& options,
                     const match::SolverContext& ctx) const override {
    const workload::DagInstance& instance = any.dag();
    const sim::Platform platform = instance.make_platform();
    const sim::ScheduleEvaluator eval(instance.dag, platform,
                                      defaults_.eval_backend);

    core::DagCeParams params;
    static_cast<core::CeCommonParams&>(params) = defaults_;
    if (options.max_iterations != 0) {
      params.max_iterations = options.max_iterations;
    }
    params.target_cost = options.target_cost;

    rng::Rng rng(options.seed);
    match::SolverContext run_ctx = ctx;
    run_ctx.with_rng(rng);
    const core::DagCeResult r = core::solve_dag_ce(eval, params, run_ctx);

    SolveOutcome out;
    static_cast<match::RunSummary&>(out) = r;
    out.mapping = r.best_mapping;
    return out;
  }

 private:
  core::CeCommonParams defaults_;
};

}  // namespace

SolverRegistry::SolverRegistry(core::CeCommonParams defaults) {
  register_solver(SolverKind::kMatch, std::make_unique<MatchSolver>(defaults));
  register_solver(SolverKind::kGa, std::make_unique<GaSolver>(defaults));
  register_solver(SolverKind::kLocalSearch,
                  std::make_unique<LocalSearchSolver>());
  register_solver(SolverKind::kMinMin,
                  std::make_unique<ListSolver>(baselines::ListRule::kMinMin));
  register_solver(SolverKind::kMaxMin,
                  std::make_unique<ListSolver>(baselines::ListRule::kMaxMin));
  register_solver(
      SolverKind::kSufferage,
      std::make_unique<ListSolver>(baselines::ListRule::kSufferage));
  register_solver(SolverKind::kHeft,
                  std::make_unique<DagListSolver>(DagListSolver::Rule::kHeft));
  register_solver(SolverKind::kTopoList,
                  std::make_unique<DagListSolver>(DagListSolver::Rule::kTopo));
  register_solver(SolverKind::kDagCe, std::make_unique<DagCeSolver>(defaults));
}

SolverRegistry::SolverRegistry(sim::EvalBackend eval_backend)
    : SolverRegistry([eval_backend] {
        core::CeCommonParams defaults;
        defaults.eval_backend = eval_backend;
        return defaults;
      }()) {}

void SolverRegistry::register_solver(SolverKind kind,
                                     std::unique_ptr<Solver> solver) {
  if (!solver) {
    throw std::invalid_argument("SolverRegistry: null solver");
  }
  const auto [it, inserted] = solvers_.emplace(kind, std::move(solver));
  if (!inserted) {
    throw std::invalid_argument(
        std::string("SolverRegistry: solver already registered for kind '") +
        to_string(kind) + "' (use replace_solver to swap it)");
  }
}

void SolverRegistry::replace_solver(SolverKind kind,
                                    std::unique_ptr<Solver> solver) {
  if (!solver) {
    throw std::invalid_argument("SolverRegistry: null solver");
  }
  solvers_[kind] = std::move(solver);
}

const Solver& SolverRegistry::get(SolverKind kind) const {
  const auto it = solvers_.find(kind);
  if (it == solvers_.end()) {
    throw std::out_of_range("SolverRegistry: no solver registered for kind");
  }
  return *it->second;
}

bool SolverRegistry::contains(SolverKind kind) const {
  return solvers_.find(kind) != solvers_.end();
}

std::vector<SolverKind> SolverRegistry::kinds() const {
  std::vector<SolverKind> out;
  out.reserve(solvers_.size());
  for (const auto& [kind, solver] : solvers_) out.push_back(kind);
  return out;
}

}  // namespace match::service
