#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace match::parallel {

/// A fixed-size thread pool with a single shared FIFO queue.
///
/// This is deliberately simple: the library's parallel sections are
/// coarse-grained batch evaluations (thousands of independent cost-function
/// calls per task), so a shared queue with chunked submission is within
/// noise of a work-stealing scheduler while being far easier to reason
/// about.  The pool is used through `parallel_for` (see parallel_for.hpp);
/// direct task submission is available for irregular work.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means `hardware_concurrency()`.
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers (equivalent to `shutdown()`).  Pending tasks are
  /// completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Begins shutdown: pending tasks are drained, workers are joined, and
  /// any later `submit` throws.  Idempotent; not safe to race with other
  /// `shutdown()` calls (the destructor path is the normal caller).
  void shutdown();

  /// Enqueues a task.  Tasks must not throw; exceptions escaping a task
  /// terminate the program (by design — parallel kernels in this library
  /// are noexcept).
  ///
  /// Guarantee: once shutdown has begun (via `shutdown()` or the
  /// destructor), `submit` throws `std::runtime_error` instead of
  /// silently enqueueing into a stopping pool — a task accepted by
  /// `submit` is always eventually executed.
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void wait_idle();

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Process-wide default pool, sized to the hardware, created on first use.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace match::parallel
