#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>

#include "parallel/thread_pool.hpp"

namespace match::parallel {

/// Controls how a `parallel_for` range is split across workers.
struct ForOptions {
  /// Minimum iterations per chunk; below `serial_cutoff` total iterations
  /// the loop runs inline on the calling thread.
  std::size_t grain = 64;
  std::size_t serial_cutoff = 256;
  /// Pool to run on; nullptr selects the process-global pool.
  ThreadPool* pool = nullptr;
  /// Dispatch chunks via OpenMP instead of the thread pool when the
  /// library was built with OpenMP support (no-op otherwise).  Results
  /// are identical either way — chunking is deterministic and bodies are
  /// data-independent; this only changes which runtime runs them.
  bool prefer_openmp = false;
};

/// Runs `body(begin, end)` over disjoint sub-ranges of [first, last) in
/// parallel and blocks until all sub-ranges complete.
///
/// `body` receives half-open index ranges so callers can amortize per-chunk
/// setup (scratch buffers, RNG streams).  The chunking is deterministic:
/// chunk `k` covers `[first + k*chunk, ...)`, so a caller that indexes
/// per-chunk resources by `chunk_index` gets reproducible assignment.
template <typename Body>
void parallel_for_chunked(std::size_t first, std::size_t last, Body&& body,
                          const ForOptions& opts = {}) {
  if (first >= last) return;
  const std::size_t n = last - first;
  ThreadPool& pool = opts.pool ? *opts.pool : ThreadPool::global();
  if (n <= opts.serial_cutoff || pool.thread_count() <= 1) {
    body(first, last, /*chunk_index=*/std::size_t{0});
    return;
  }

  const std::size_t target_chunks = pool.thread_count() * 4;
  std::size_t chunk = std::max<std::size_t>(opts.grain, (n + target_chunks - 1) / target_chunks);
  const std::size_t chunk_count = (n + chunk - 1) / chunk;

#if defined(MATCH_HAVE_OPENMP)
  if (opts.prefer_openmp) {
    const auto count = static_cast<std::ptrdiff_t>(chunk_count);
#pragma omp parallel for schedule(dynamic, 1)
    for (std::ptrdiff_t k = 0; k < count; ++k) {
      const std::size_t lo = first + static_cast<std::size_t>(k) * chunk;
      const std::size_t hi = std::min(last, lo + chunk);
      body(lo, hi, static_cast<std::size_t>(k));
    }
    return;
  }
#endif

  std::atomic<std::size_t> remaining{chunk_count};
  std::mutex done_mutex;
  std::condition_variable done_cv;

  for (std::size_t k = 0; k < chunk_count; ++k) {
    const std::size_t lo = first + k * chunk;
    const std::size_t hi = std::min(last, lo + chunk);
    pool.submit([&, lo, hi, k] {
      body(lo, hi, k);
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }

  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load(std::memory_order_acquire) == 0; });
}

/// Element-wise parallel loop: runs `body(i)` for each i in [first, last).
template <typename Body>
void parallel_for(std::size_t first, std::size_t last, Body&& body,
                  const ForOptions& opts = {}) {
  parallel_for_chunked(
      first, last,
      [&body](std::size_t lo, std::size_t hi, std::size_t /*chunk*/) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      opts);
}

/// Parallel map: out[i] = f(i) for i in [0, n).  `out` must have size >= n.
template <typename T, typename F>
void parallel_transform(std::size_t n, T* out, F&& f, const ForOptions& opts = {}) {
  parallel_for(
      0, n, [&](std::size_t i) { out[i] = f(i); }, opts);
}

}  // namespace match::parallel
