#include "parallel/thread_pool.hpp"

#include <stdexcept>
#include <utility>

namespace match::parallel {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;  // already shut down (or shutting down)
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool::submit after shutdown");
    }
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace match::parallel
