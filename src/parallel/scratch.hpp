#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace match::parallel {

/// A small pool of reusable worker-state objects for chunked parallel
/// loops.
///
/// The library's hot loops (`MatchOptimizer::run`, batch evaluation)
/// need per-worker scratch — GenPerm samplers, load buffers, count
/// accumulators — that is expensive to construct per chunk and must not
/// be shared between concurrently running chunks.  `ScratchPool` hands
/// out exclusive leases: `acquire()` pops an idle state or creates one
/// via the factory, and the lease returns the state on destruction.
/// The number of states ever created is bounded by the peak number of
/// concurrent leases (≤ pool worker count), so a loop that acquires
/// once per chunk is allocation-free once the pool has warmed up —
/// including across successive iterations of an outer loop that keeps
/// the pool alive.
///
/// Determinism note: which chunk lands on which state depends on thread
/// timing, so states must only carry *scratch* — buffers whose contents
/// are fully overwritten before use, or accumulators whose reduction is
/// order-insensitive (e.g. exact integer counts in doubles) — never RNG
/// state or anything order-sensitive.
template <typename T>
class ScratchPool {
 public:
  explicit ScratchPool(std::function<std::unique_ptr<T>()> factory)
      : factory_(std::move(factory)) {}

  ScratchPool(const ScratchPool&) = delete;
  ScratchPool& operator=(const ScratchPool&) = delete;

  /// Exclusive RAII handle to one pooled state.
  class Lease {
   public:
    Lease(ScratchPool* pool, std::unique_ptr<T> item)
        : pool_(pool), item_(std::move(item)) {}
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), item_(std::move(other.item_)) {}
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() {
      if (item_) pool_->release(std::move(item_));
    }

    T& operator*() const noexcept { return *item_; }
    T* operator->() const noexcept { return item_.get(); }

   private:
    ScratchPool* pool_;
    std::unique_ptr<T> item_;
  };

  Lease acquire() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!idle_.empty()) {
        std::unique_ptr<T> item = std::move(idle_.back());
        idle_.pop_back();
        return Lease(this, std::move(item));
      }
      ++created_;
      // Capacity for every state ever created: `release` never allocates.
      idle_.reserve(created_);
    }
    // Construct outside the lock; factories may be expensive.
    return Lease(this, factory_());
  }

  /// Number of states created so far (== peak concurrent leases).
  std::size_t created() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return created_;
  }

  /// Applies `fn` to every pooled state.  Only valid while no leases are
  /// outstanding (i.e. after the parallel loop has joined), so that the
  /// idle list holds every state ever created.
  template <typename Fn>
  void for_each(Fn&& fn) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& item : idle_) fn(*item);
  }

 private:
  void release(std::unique_ptr<T> item) {
    std::lock_guard<std::mutex> lock(mutex_);
    idle_.push_back(std::move(item));
  }

  std::function<std::unique_ptr<T>()> factory_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<T>> idle_;
  std::size_t created_ = 0;
};

}  // namespace match::parallel
