#include "stats/nonparametric.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/descriptive.hpp"

namespace match::stats {

namespace {

/// Standard normal CDF via erfc.
double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

}  // namespace

MannWhitneyResult mann_whitney_u(std::span<const double> x,
                                 std::span<const double> y) {
  if (x.empty() || y.empty()) {
    throw std::invalid_argument("mann_whitney_u: empty sample");
  }
  const std::size_t nx = x.size(), ny = y.size();

  // Pool, sort, assign mid-ranks to ties.
  struct Tagged {
    double value;
    bool from_x;
  };
  std::vector<Tagged> pool;
  pool.reserve(nx + ny);
  for (double v : x) pool.push_back({v, true});
  for (double v : y) pool.push_back({v, false});
  std::sort(pool.begin(), pool.end(),
            [](const Tagged& a, const Tagged& b) { return a.value < b.value; });

  double rank_sum_x = 0.0;
  double tie_term = 0.0;  // Σ (t^3 - t) over tie groups
  std::size_t i = 0;
  while (i < pool.size()) {
    std::size_t j = i;
    while (j < pool.size() && pool[j].value == pool[i].value) ++j;
    const double mid_rank =
        0.5 * (static_cast<double>(i + 1) + static_cast<double>(j));
    const auto t = static_cast<double>(j - i);
    if (j - i > 1) tie_term += t * t * t - t;
    for (std::size_t k = i; k < j; ++k) {
      if (pool[k].from_x) rank_sum_x += mid_rank;
    }
    i = j;
  }

  MannWhitneyResult r;
  const double nxd = static_cast<double>(nx), nyd = static_cast<double>(ny);
  r.u = rank_sum_x - nxd * (nxd + 1.0) / 2.0;
  r.effect_size = 1.0 - r.u / (nxd * nyd);  // P(X < Y) + .5 P(=)

  const double mean_u = nxd * nyd / 2.0;
  const double n = nxd + nyd;
  const double var_u =
      nxd * nyd / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
  if (var_u <= 0.0) {
    // All observations identical: no evidence of difference.
    r.z = 0.0;
    r.p_value = 1.0;
    return r;
  }
  // Continuity correction toward the mean.
  const double diff = r.u - mean_u;
  const double corrected = diff > 0.5 ? diff - 0.5 : (diff < -0.5 ? diff + 0.5 : 0.0);
  r.z = corrected / std::sqrt(var_u);
  r.p_value = 2.0 * (1.0 - normal_cdf(std::abs(r.z)));
  if (r.p_value > 1.0) r.p_value = 1.0;
  return r;
}

BootstrapInterval bootstrap_mean_ci(std::span<const double> data, double level,
                                    std::size_t resamples, rng::Rng& rng) {
  if (data.empty()) {
    throw std::invalid_argument("bootstrap_mean_ci: empty sample");
  }
  if (!(level > 0.0 && level < 1.0)) {
    throw std::invalid_argument("bootstrap_mean_ci: level in (0, 1)");
  }
  if (resamples < 10) {
    throw std::invalid_argument("bootstrap_mean_ci: too few resamples");
  }

  std::vector<double> means(resamples);
  const double inv_n = 1.0 / static_cast<double>(data.size());
  for (std::size_t b = 0; b < resamples; ++b) {
    double sum = 0.0;
    for (std::size_t k = 0; k < data.size(); ++k) {
      sum += data[rng.below(data.size())];
    }
    means[b] = sum * inv_n;
  }

  BootstrapInterval out;
  out.level = level;
  out.resamples = resamples;
  const double alpha = (1.0 - level) / 2.0;
  out.lo = quantile(means, alpha);
  out.hi = quantile(means, 1.0 - alpha);
  return out;
}

}  // namespace match::stats
