#pragma once

// Nonparametric comparisons for heuristic-evaluation data.  ET samples
// from randomized heuristics are skewed and occasionally multi-modal, so
// rank-based tests and bootstrap intervals are the methodologically
// sound complement to the paper's ANOVA (which assumes normality).

#include <cstdint>
#include <span>

#include "rng/rng.hpp"

namespace match::stats {

/// Mann–Whitney U test (two-sided, normal approximation with tie
/// correction).  Valid for sample sizes ≳ 8 per group.
struct MannWhitneyResult {
  double u = 0.0;        ///< U statistic of the first sample
  double z = 0.0;        ///< normal approximation z-score
  double p_value = 1.0;  ///< two-sided
  /// P(X < Y) + 0.5 P(X = Y): the common-language effect size; 0.5 means
  /// no stochastic difference.
  double effect_size = 0.5;
};
MannWhitneyResult mann_whitney_u(std::span<const double> x,
                                 std::span<const double> y);

/// Percentile bootstrap confidence interval for the mean.
struct BootstrapInterval {
  double lo = 0.0;
  double hi = 0.0;
  double level = 0.95;
  std::size_t resamples = 0;
};
BootstrapInterval bootstrap_mean_ci(std::span<const double> data,
                                    double level, std::size_t resamples,
                                    rng::Rng& rng);

}  // namespace match::stats
