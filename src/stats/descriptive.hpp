#pragma once

#include <cstddef>
#include <span>

namespace match::stats {

/// Summary statistics of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< unbiased (n-1 denominator); 0 for n < 2
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Computes the summary of `data` (which may be unsorted; the input is
/// not modified).  Throws `std::invalid_argument` on an empty sample.
Summary summarize(std::span<const double> data);

/// Sample mean.
double mean(std::span<const double> data);

/// Unbiased sample variance (n-1); 0 for samples smaller than 2.
double variance(std::span<const double> data);

/// The q-quantile (0 <= q <= 1) with linear interpolation between order
/// statistics (type-7, the R/NumPy default).
double quantile(std::span<const double> data, double q);

/// Median (the 0.5 quantile).
double median(std::span<const double> data);

/// Two-sided confidence interval for the mean using the Student-t
/// distribution.
struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;
  double level = 0.95;
};
ConfidenceInterval mean_confidence_interval(std::span<const double> data,
                                            double level = 0.95);

}  // namespace match::stats
