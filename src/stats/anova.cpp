#include "stats/anova.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/descriptive.hpp"
#include "stats/special_functions.hpp"

namespace match::stats {

AnovaResult one_way_anova(std::span<const std::vector<double>> groups) {
  if (groups.size() < 2) {
    throw std::invalid_argument("one_way_anova: need >= 2 groups");
  }
  std::size_t total_n = 0;
  double grand_sum = 0.0;
  for (const auto& g : groups) {
    if (g.empty()) throw std::invalid_argument("one_way_anova: empty group");
    total_n += g.size();
    for (double x : g) grand_sum += x;
  }
  const double k = static_cast<double>(groups.size());
  const double n = static_cast<double>(total_n);
  if (total_n <= groups.size()) {
    throw std::invalid_argument("one_way_anova: no within-group dof");
  }

  AnovaResult r;
  r.grand_mean = grand_sum / n;
  r.df_between = k - 1.0;
  r.df_within = n - k;

  for (const auto& g : groups) {
    const double gm = mean(g);
    r.ss_between +=
        static_cast<double>(g.size()) * (gm - r.grand_mean) * (gm - r.grand_mean);
    for (double x : g) r.ss_within += (x - gm) * (x - gm);
  }
  r.ms_between = r.ss_between / r.df_between;
  r.ms_within = r.ss_within / r.df_within;

  if (r.ms_within <= 0.0) {
    if (r.ms_between <= 0.0) {
      // All observations identical: no evidence against the null.
      r.f_value = 0.0;
      r.p_value = 1.0;
    } else {
      r.f_value = std::numeric_limits<double>::infinity();
      r.p_value = 0.0;
    }
    return r;
  }

  r.f_value = r.ms_between / r.ms_within;
  r.p_value = f_sf(r.f_value, r.df_between, r.df_within);
  return r;
}

}  // namespace match::stats
