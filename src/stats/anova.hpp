#pragma once

#include <span>
#include <vector>

namespace match::stats {

/// One-way ANOVA result (the paper's Table-3 analysis).
struct AnovaResult {
  double f_value = 0.0;     ///< between-group MS / within-group MS
  double p_value = 1.0;     ///< P(F > f) under the null hypothesis
  double ss_between = 0.0;  ///< treatment sum of squares
  double ss_within = 0.0;   ///< error sum of squares
  double df_between = 0.0;  ///< k - 1
  double df_within = 0.0;   ///< N - k
  double ms_between = 0.0;
  double ms_within = 0.0;
  double grand_mean = 0.0;
};

/// One-way ANOVA across `groups` (each a sample of observations).
///
/// Requires at least two groups, every group non-empty, and at least one
/// within-group degree of freedom; throws `std::invalid_argument`
/// otherwise.  A zero within-group mean square (all groups internally
/// constant) yields f = +infinity, p = 0 when the group means differ.
AnovaResult one_way_anova(std::span<const std::vector<double>> groups);

}  // namespace match::stats
