#include "stats/special_functions.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace match::stats {

double log_gamma(double x) {
  if (!(x > 0.0)) throw std::domain_error("log_gamma: x must be > 0");
  // Lanczos approximation, g = 7, n = 9 coefficients.
  static constexpr double kCoef[9] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection: Γ(x)Γ(1-x) = π / sin(πx).
    return std::log(M_PI / std::sin(M_PI * x)) - log_gamma(1.0 - x);
  }
  const double z = x - 1.0;
  double sum = kCoef[0];
  for (int i = 1; i < 9; ++i) sum += kCoef[i] / (z + static_cast<double>(i));
  const double t = z + 7.5;
  return 0.5 * std::log(2.0 * M_PI) + (z + 0.5) * std::log(t) - t +
         std::log(sum);
}

namespace {

/// Continued fraction for the incomplete beta (Numerical Recipes betacf),
/// evaluated by the modified Lentz method.
double beta_continued_fraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kTiny = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) return h;
  }
  throw std::runtime_error("incomplete_beta: continued fraction diverged");
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  if (!(a > 0.0 && b > 0.0)) {
    throw std::domain_error("incomplete_beta: a, b must be > 0");
  }
  if (x < 0.0 || x > 1.0) {
    throw std::domain_error("incomplete_beta: x must be in [0, 1]");
  }
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;

  const double ln_front = log_gamma(a + b) - log_gamma(a) - log_gamma(b) +
                          a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(ln_front);
  // Use the symmetry that keeps the continued fraction well-conditioned.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_continued_fraction(a, b, x) / a;
  }
  return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

double incomplete_gamma_p(double a, double x) {
  if (!(a > 0.0)) throw std::domain_error("incomplete_gamma_p: a must be > 0");
  if (x < 0.0) throw std::domain_error("incomplete_gamma_p: x must be >= 0");
  if (x == 0.0) return 0.0;

  const double ln_front = a * std::log(x) - x - log_gamma(a);
  if (x < a + 1.0) {
    // Series: P(a, x) = x^a e^-x / Γ(a) · Σ x^k Γ(a) / Γ(a + 1 + k).
    double term = 1.0 / a;
    double sum = term;
    for (int k = 1; k <= 500; ++k) {
      term *= x / (a + static_cast<double>(k));
      sum += term;
      if (std::abs(term) < std::abs(sum) * 3e-14) {
        return sum * std::exp(ln_front);
      }
    }
    throw std::runtime_error("incomplete_gamma_p: series did not converge");
  }
  // Continued fraction for Q(a, x) (modified Lentz), complemented.
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < 3e-14) {
      return 1.0 - h * std::exp(ln_front);
    }
  }
  throw std::runtime_error("incomplete_gamma_p: continued fraction diverged");
}

double chi_square_cdf(double x, double dof) {
  if (!(dof > 0.0)) throw std::domain_error("chi_square_cdf: dof must be > 0");
  if (x <= 0.0) return 0.0;
  return incomplete_gamma_p(dof / 2.0, x / 2.0);
}

double chi_square_sf(double x, double dof) { return 1.0 - chi_square_cdf(x, dof); }

double student_t_cdf(double t, double dof) {
  if (!(dof > 0.0)) throw std::domain_error("student_t_cdf: dof must be > 0");
  if (t == 0.0) return 0.5;
  const double x = dof / (dof + t * t);
  const double tail = 0.5 * incomplete_beta(dof / 2.0, 0.5, x);
  return t > 0.0 ? 1.0 - tail : tail;
}

double student_t_quantile_two_sided(double level, double dof) {
  if (!(level > 0.0 && level < 1.0)) {
    throw std::domain_error("student_t_quantile_two_sided: level in (0,1)");
  }
  // P(|T| <= t*) = level  <=>  CDF(t*) = (1 + level) / 2.
  const double target = 0.5 * (1.0 + level);
  double lo = 0.0, hi = 1.0;
  while (student_t_cdf(hi, dof) < target) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (student_t_cdf(mid, dof) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * std::max(1.0, hi)) break;
  }
  return 0.5 * (lo + hi);
}

double f_cdf(double f, double d1, double d2) {
  if (!(d1 > 0.0 && d2 > 0.0)) throw std::domain_error("f_cdf: dof");
  if (f <= 0.0) return 0.0;
  const double x = d1 * f / (d1 * f + d2);
  return incomplete_beta(d1 / 2.0, d2 / 2.0, x);
}

double f_sf(double f, double d1, double d2) {
  if (!(d1 > 0.0 && d2 > 0.0)) throw std::domain_error("f_sf: dof");
  if (f <= 0.0) return 1.0;
  // Complement via the beta symmetry to preserve precision in the tail.
  const double x = d1 * f / (d1 * f + d2);
  return incomplete_beta(d2 / 2.0, d1 / 2.0, 1.0 - x);
}

}  // namespace match::stats
