#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/special_functions.hpp"

namespace match::stats {

double mean(std::span<const double> data) {
  if (data.empty()) throw std::invalid_argument("mean: empty sample");
  double sum = 0.0;
  for (double x : data) sum += x;
  return sum / static_cast<double>(data.size());
}

double variance(std::span<const double> data) {
  if (data.empty()) throw std::invalid_argument("variance: empty sample");
  if (data.size() < 2) return 0.0;
  const double m = mean(data);
  double ss = 0.0;
  for (double x : data) ss += (x - m) * (x - m);
  return ss / static_cast<double>(data.size() - 1);
}

double quantile(std::span<const double> data, double q) {
  if (data.empty()) throw std::invalid_argument("quantile: empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: bad q");
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  const double h = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = static_cast<std::size_t>(std::ceil(h));
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> data) { return quantile(data, 0.5); }

Summary summarize(std::span<const double> data) {
  if (data.empty()) throw std::invalid_argument("summarize: empty sample");
  Summary s;
  s.count = data.size();
  s.mean = mean(data);
  s.variance = variance(data);
  s.stddev = std::sqrt(s.variance);
  s.min = *std::min_element(data.begin(), data.end());
  s.max = *std::max_element(data.begin(), data.end());
  s.median = median(data);
  return s;
}

ConfidenceInterval mean_confidence_interval(std::span<const double> data,
                                            double level) {
  if (data.size() < 2) {
    throw std::invalid_argument("mean_confidence_interval: need n >= 2");
  }
  const double m = mean(data);
  const double se =
      std::sqrt(variance(data) / static_cast<double>(data.size()));
  const double tstar = student_t_quantile_two_sided(
      level, static_cast<double>(data.size() - 1));
  return ConfidenceInterval{m - tstar * se, m + tstar * se, level};
}

}  // namespace match::stats
