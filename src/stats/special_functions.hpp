#pragma once

namespace match::stats {

/// ln Γ(x) for x > 0 (Lanczos approximation, ~15 significant digits).
double log_gamma(double x);

/// Regularized incomplete beta function I_x(a, b) for a, b > 0 and
/// x ∈ [0, 1], via the Lentz continued-fraction expansion.  This is the
/// CDF kernel of both the Student-t and F distributions.
double incomplete_beta(double a, double b, double x);

/// Student-t distribution with `dof` degrees of freedom.
double student_t_cdf(double t, double dof);

/// Two-sided critical value t* with P(|T| <= t*) = level (e.g. 0.95),
/// found by bisection on the CDF.
double student_t_quantile_two_sided(double level, double dof);

/// Regularized lower incomplete gamma P(a, x) for a > 0, x >= 0 (series
/// expansion for x < a + 1, Lentz continued fraction otherwise).  This
/// is the CDF kernel of the gamma, chi-square, and Poisson families.
double incomplete_gamma_p(double a, double x);

/// Chi-square distribution CDF with `dof` degrees of freedom.
double chi_square_cdf(double x, double dof);

/// Upper tail P(X² > x) — the goodness-of-fit p-value.
double chi_square_sf(double x, double dof);

/// F distribution CDF with (d1, d2) degrees of freedom.
double f_cdf(double f, double d1, double d2);

/// Upper tail P(F > f) — the ANOVA p-value.
double f_sf(double f, double d1, double d2);

}  // namespace match::stats
