#include "core/rematch.hpp"

#include <stdexcept>
#include <vector>

namespace match::core {

void RematchParams::validate() const {
  if (anchor < 0.0 || anchor >= 1.0) {
    throw std::invalid_argument("RematchParams: anchor must be in [0, 1)");
  }
  base.validate();
}

StochasticMatrix anchored_matrix(const sim::Mapping& incumbent,
                                 std::size_t num_resources, double anchor) {
  if (anchor < 0.0 || anchor >= 1.0) {
    throw std::invalid_argument("anchored_matrix: anchor must be in [0, 1)");
  }
  if (!incumbent.is_valid(num_resources)) {
    throw std::invalid_argument("anchored_matrix: incumbent out of range");
  }
  const std::size_t n = incumbent.num_tasks();
  const double background = (1.0 - anchor) / static_cast<double>(num_resources);
  std::vector<double> values(n * num_resources, background);
  for (graph::NodeId t = 0; t < n; ++t) {
    values[t * num_resources + incumbent.resource_of(t)] += anchor;
  }
  return StochasticMatrix::from_values(n, num_resources, std::move(values));
}

MatchResult rematch(const sim::CostEvaluator& eval,
                    const sim::Mapping& incumbent, const RematchParams& params,
                    const SolverContext& ctx) {
  params.validate();
  if (incumbent.num_tasks() != eval.num_tasks()) {
    throw std::invalid_argument("rematch: incumbent size mismatch");
  }
  if (!incumbent.is_permutation()) {
    throw std::invalid_argument("rematch: incumbent must be a permutation");
  }

  MatchOptimizer optimizer(eval, params.base);
  optimizer.set_initial_matrix(
      anchored_matrix(incumbent, eval.num_resources(), params.anchor));
  MatchResult result = optimizer.run(ctx);

  // Never regress: the incumbent stays available as a candidate.
  const double incumbent_cost = eval.makespan(incumbent);
  if (incumbent_cost < result.best_cost) {
    result.best_cost = incumbent_cost;
    result.best_mapping = incumbent;
  }
  return result;
}

}  // namespace match::core
