#pragma once

// Cross-entropy over priority permutations for DAG scheduling.
//
// MaTCH's CE machinery optimizes over permutation mappings; for DAG
// workloads the natural permutation space is *priority orders*: a
// priority permutation fed to the insertion-based list scheduler
// (`sim::ScheduleEvaluator::schedule_priorities`) yields a full timed
// schedule, so CE searches the space of list-scheduling priorities —
// exactly the degree of freedom that separates HEFT from its
// competitors.  The stochastic matrix parameterizes P[slot][task]
// ("which task is the k-th most urgent"), `GenPermSampler` draws valid
// permutations from it, and the elite update re-estimates slot→task
// frequencies — the same GenPerm + elite-frequency scheme as MaTCH, run
// through the generic `run_ce` driver with no solver-core changes.

#include <cstddef>
#include <span>
#include <vector>

#include "core/ce_driver.hpp"
#include "core/ce_params.hpp"
#include "core/genperm.hpp"
#include "core/solver_context.hpp"
#include "core/stochastic_matrix.hpp"
#include "rng/rng.hpp"
#include "sim/mapping.hpp"
#include "sim/schedule_eval.hpp"

namespace match::core {

/// Parameters of the DAG priority-space CE solver.  The shared knobs
/// live in the `CeCommonParams` base; `sample_size` 0 resolves to
/// max(64, 2·tasks) — priority space is n-dimensional, not n²-, so the
/// paper's 2n² batch would overspend.  `parallel` spreads each batch's
/// cost pass across the context's thread pool (lane results are
/// thread-count-independent, so parallel and serial runs agree exactly).
/// `eval_backend` is consumed where the `ScheduleEvaluator` is built —
/// the service layer threads it into the evaluator's constructor — and
/// the resolved choice is reported via the `solver.backend.<name>`
/// metric; it selects the assignment-mode SIMD kernel, while this
/// solver's priority-mode cost pass keeps scalar lanes (the
/// insertion-EFT gap scan resists vectorization).
struct DagCeParams : CeCommonParams {
  std::size_t max_iterations = 200;
  std::size_t gamma_stall_window = 10;
  double degeneracy_eps = 1e-3;
  /// GenPerm visits priority slots in random order (avoids the early-slot
  /// bias a fixed order would give); fixed order for ablations.
  bool random_task_order = true;

  void validate() const;
};

/// The `run_ce` problem adapter: Sample = priority permutation
/// (`sample[k]` = the k-th most urgent task).
class DagPriorityProblem {
 public:
  using Sample = std::vector<graph::NodeId>;

  DagPriorityProblem(const sim::ScheduleEvaluator& eval,
                     SamplerBackend backend = SamplerBackend::kAlias,
                     bool random_task_order = true, bool parallel = false);

  std::size_t size() const noexcept { return n_; }

  // --- CE driver interface -------------------------------------------
  Sample draw(rng::Rng& rng);
  double cost(const Sample& priority);
  /// Batched cost hook preferred by `run_ce`: re-packs the batch into a
  /// task-major `SampleBlock` and runs `priority_makespans_batch`
  /// (scalar lanes, pooled scratch), fanning lanes across `ctx`'s thread
  /// pool when `parallel` was set.  Results match `cost()` lane for lane.
  void costs(const std::vector<Sample>& samples, std::span<double> out,
             const match::SolverContext& ctx);
  void update(const std::vector<const Sample*>& elites, double zeta);
  bool degenerate(double eps) const;

  const StochasticMatrix& priority_matrix() const noexcept { return p_; }
  std::size_t evaluations() const noexcept { return evaluations_; }

 private:
  const sim::ScheduleEvaluator* eval_;
  std::size_t n_;
  StochasticMatrix p_;  ///< P[slot][task], row-stochastic
  GenPermSampler sampler_;
  RowAliasTables tables_;
  SamplerBackend backend_;
  bool random_task_order_;
  bool parallel_;
  bool tables_dirty_ = true;
  std::size_t evaluations_ = 0;
  sim::ScheduleEvaluator::Scratch scratch_;
  sim::SampleBlock block_;  ///< batched-cost re-pack, reused per iteration
  std::vector<double> counts_;
};

/// Outcome of a DAG CE run.  `best_cost` is the makespan; the schedule
/// is the best priority's full timed schedule (re-derived once at the
/// end — the list scheduler is deterministic, so it reproduces the cost
/// the run observed).
struct DagCeResult : match::RunSummary {
  std::vector<graph::NodeId> best_priority;
  sim::Mapping best_mapping;
  sim::Schedule schedule;
  std::size_t evaluations = 0;  ///< list-scheduler invocations spent
  std::vector<CeIterationStats> history;
  double elapsed_seconds = 0.0;
};

/// Runs CE over priority permutations on `eval`'s DAG + platform.  The
/// context supplies the RNG stream (required), stop hook, and telemetry;
/// determinism and cancellation semantics follow `run_ce` (including the
/// single fallback draw when cancelled before the first batch).
DagCeResult solve_dag_ce(const sim::ScheduleEvaluator& eval,
                         const DagCeParams& params,
                         const match::SolverContext& ctx);

}  // namespace match::core
