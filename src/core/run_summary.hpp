#pragma once

// The common base every solver result embeds.
//
// Before this existed each result type (`CeResult`, `MatchResult`,
// `GaResult`, `IslandResult`, `SearchResult`) spelled these fields its
// own way and the service's solver adapters re-mapped them one by one.
// Embedding one base lets generic code (the solver registry, benchmark
// sweeps, telemetry) read any run's outcome without knowing which
// heuristic produced it.

#include <cstddef>
#include <limits>

namespace match {

struct RunSummary {
  /// Best cost observed over the whole run; +inf until the first sample
  /// has been evaluated.
  double best_cost = std::numeric_limits<double>::infinity();

  /// Iterations completed (CE iterations, GA generations, island epochs,
  /// or evaluations for budget-driven searches — each solver documents
  /// its unit).
  std::size_t iterations = 0;

  /// True when the run was stopped by the caller's stop hook (deadline
  /// expiry / external cancellation); `best_cost` is still the best
  /// observed so far.
  bool cancelled = false;

  /// True when the sampling distribution collapsed (CE degeneracy
  /// early-out); meaningless for non-CE solvers.
  bool degenerate = false;
};

}  // namespace match
