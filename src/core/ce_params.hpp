#pragma once

// The knobs every batch-sampling solver shares, factored into one base.
//
// `MatchParams`, `GeneralMatchParams`, and `GaParams` each grew private
// copies of the same fields (elite fraction, smoothing, batch size,
// parallelism, quality target, sampler and evaluation backends), which
// meant the service layer had to thread three structs to configure one
// policy.  Embedding this base keeps every existing field name and
// default identical — call sites read `params.rho` exactly as before —
// while `ServiceConfig`/`SolverRegistry` thread a single
// `CeCommonParams` for all built-in solver adapters.
//
// Not every solver consumes every knob; each derived struct documents
// which fields it ignores (e.g. the GA keeps `population` as its batch
// size and ignores `rho`/`zeta`/`sample_size`/`sampler`).

#include <cstddef>
#include <stdexcept>
#include <string>

#include "core/genperm.hpp"
#include "sim/batch_eval.hpp"

namespace match::core {

struct CeCommonParams {
  /// Focus parameter ρ — fraction of each batch kept as the elite set.
  /// The paper recommends 0.01 ≤ ρ ≤ 0.1.
  double rho = 0.05;

  /// Smoothing factor ζ of eq. (13); the paper uses 0.3.  ζ = 1 disables
  /// smoothing (coarse update).
  double zeta = 0.3;

  /// Samples per iteration N; 0 selects each solver's auto rule
  /// (MaTCH: the paper's 2·n²; general mapper: 2·tasks·resources;
  /// DAG CE: max(64, 2·tasks)).
  std::size_t sample_size = 0;

  /// Evaluate/sample batches on the thread pool.
  bool parallel = true;

  /// Quality target: stop as soon as best-so-far ≤ this value (0 — the
  /// default — disables the check); the service layer uses it for "good
  /// enough, answer now" requests.
  double target_cost = 0.0;

  /// GenPerm draw backend.  `kAlias` (default) builds per-row alias
  /// tables once per iteration and rejection-samples each pick in O(1)
  /// expected — distributionally identical to the exact scan but
  /// ~O(n log n) instead of O(n²) per sample.  `kScan` is the legacy
  /// exact scan, bit-identical to pre-alias library versions for a
  /// fixed seed (see docs/ALGORITHMS.md).
  SamplerBackend sampler = SamplerBackend::kAlias;

  /// Batch-evaluation backend for the per-iteration cost pass.  `kAuto`
  /// (default) picks the best SIMD kernel the CPU supports; `kScalar`
  /// pins the reference kernel.  The resolved choice is reported via the
  /// `solver.backend.<name>` metric.  On integer-valued workloads (the
  /// paper's) every backend is bit-identical; on fractional ones SIMD
  /// sums reassociate — see sim/batch_eval.hpp.
  sim::EvalBackend eval_backend = sim::EvalBackend::kAuto;

  /// Range-checks the common fields.  `who` prefixes the error messages
  /// so each derived struct keeps its historical diagnostics
  /// (e.g. "MatchParams: rho must be in (0, 1)").
  void validate_common(const char* who) const {
    const std::string prefix = std::string(who) + ": ";
    if (!(rho > 0.0 && rho < 1.0)) {
      throw std::invalid_argument(prefix + "rho must be in (0, 1)");
    }
    if (!(zeta > 0.0 && zeta <= 1.0)) {
      throw std::invalid_argument(prefix + "zeta must be in (0, 1]");
    }
    if (target_cost < 0.0) {
      throw std::invalid_argument(prefix + "target_cost < 0");
    }
  }
};

}  // namespace match::core
