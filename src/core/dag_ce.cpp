#include "core/dag_ce.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "parallel/parallel_for.hpp"

namespace match::core {

void DagCeParams::validate() const {
  validate_common("DagCeParams");
  if (max_iterations == 0) {
    throw std::invalid_argument("DagCeParams: max_iterations must be >= 1");
  }
  if (gamma_stall_window == 0) {
    throw std::invalid_argument("DagCeParams: gamma_stall_window must be >= 1");
  }
  if (degeneracy_eps <= 0.0) {
    throw std::invalid_argument("DagCeParams: degeneracy_eps <= 0");
  }
}

DagPriorityProblem::DagPriorityProblem(const sim::ScheduleEvaluator& eval,
                                       SamplerBackend backend,
                                       bool random_task_order, bool parallel)
    : eval_(&eval),
      n_(eval.num_tasks()),
      p_(StochasticMatrix::uniform(eval.num_tasks() > 0 ? eval.num_tasks() : 1,
                                   eval.num_tasks() > 0 ? eval.num_tasks()
                                                        : 1)),
      sampler_(eval.num_tasks()),
      backend_(backend),
      random_task_order_(random_task_order),
      parallel_(parallel) {
  if (n_ < 2) {
    throw std::invalid_argument("DagPriorityProblem: need >= 2 tasks");
  }
}

DagPriorityProblem::Sample DagPriorityProblem::draw(rng::Rng& rng) {
  Sample priority(n_);
  // GenPerm reads P row-by-row with a free-set constraint; here rows are
  // priority slots and columns are tasks, so out[slot] = task.
  if (backend_ == SamplerBackend::kAlias) {
    if (tables_dirty_) {
      tables_.build(p_);
      tables_dirty_ = false;
    }
    sampler_.sample(p_, tables_, rng, priority, random_task_order_);
  } else {
    sampler_.sample(p_, rng, priority, random_task_order_);
  }
  return priority;
}

double DagPriorityProblem::cost(const Sample& priority) {
  ++evaluations_;
  return eval_->schedule_priorities(priority, scratch_);
}

void DagPriorityProblem::costs(const std::vector<Sample>& samples,
                               std::span<double> out,
                               const match::SolverContext& ctx) {
  block_.reset(n_, samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    block_.store_sample(i, samples[i]);
  }
  parallel::ForOptions opts;
  opts.pool = ctx.pool();
  if (!parallel_) {
    // Lane results are thread-count-independent either way; serial mode
    // just never touches the pool.
    opts.serial_cutoff = std::numeric_limits<std::size_t>::max();
  }
  eval_->priority_makespans_batch(block_, out, opts);
  evaluations_ += samples.size();
}

void DagPriorityProblem::update(const std::vector<const Sample*>& elites,
                                double zeta) {
  if (elites.empty()) return;
  counts_.assign(n_ * n_, 0.0);
  for (const Sample* priority : elites) {
    for (std::size_t slot = 0; slot < n_; ++slot) {
      counts_[slot * n_ + (*priority)[slot]] += 1.0;
    }
  }
  const double denom = static_cast<double>(elites.size());
  for (double& c : counts_) c /= denom;
  p_.blend_from(StochasticMatrix::from_values(n_, n_, counts_), zeta);
  tables_dirty_ = true;
}

bool DagPriorityProblem::degenerate(double eps) const {
  return p_.is_degenerate(eps);
}

DagCeResult solve_dag_ce(const sim::ScheduleEvaluator& eval,
                         const DagCeParams& params,
                         const match::SolverContext& ctx) {
  params.validate();
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t n = eval.num_tasks();

  DagPriorityProblem problem(eval, params.sampler, params.random_task_order,
                             params.parallel);
  if (ctx.metrics() != nullptr) {
    // Book the evaluator's resolved kernel so operators can see which
    // backend actually served the run (same booking as matchalgo/ga).
    ctx.metrics()
        ->counter(std::string("solver.backend.") + eval.backend_name())
        .add();
  }

  CeDriverParams driver;
  driver.rho = params.rho;
  driver.zeta = params.zeta;
  driver.sample_size = params.sample_size != 0
                           ? params.sample_size
                           : std::max<std::size_t>(64, 2 * n);
  driver.max_iterations = params.max_iterations;
  driver.gamma_stall_window = params.gamma_stall_window;
  driver.degeneracy_eps = params.degeneracy_eps;
  driver.target_cost = params.target_cost;

  CeResult<DagPriorityProblem::Sample> ce = run_ce(problem, driver, ctx);

  DagCeResult result;
  static_cast<match::RunSummary&>(result) = ce;
  result.best_priority = std::move(ce.best);
  result.history = std::move(ce.history);
  result.evaluations = problem.evaluations();

  // Re-derive the best priority's full schedule (the list scheduler is
  // deterministic, so this reproduces the observed cost exactly).
  sim::ScheduleEvaluator::Scratch scratch;
  const double makespan =
      eval.schedule_priorities(result.best_priority, scratch, &result.schedule);
  result.best_cost = makespan;
  result.best_mapping = sim::Mapping(result.schedule.assignment);
  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace match::core
