#pragma once

// The single per-run argument every solver takes.
//
// Replaces the old scattered `(rng, should_stop)` conventions: one
// `SolverContext` bundles the RNG stream, the cooperative stop hook, the
// telemetry sink/metrics pair, the thread pool to run on, and a run id
// that correlates all events of the run.  All members are optional
// except that solvers which sample require an RNG (`rng()` throws when
// unset — constructing a context without one is only useful for
// deterministic solvers like min-min).
//
// Contexts are cheap to copy and chainable:
//
//   rng::Rng rng(seed);
//   auto ctx = match::SolverContext(rng)
//                  .with_stop(deadline_hook)
//                  .with_sink(&trace)
//                  .with_metrics(&registry);
//   auto result = optimizer.run(ctx);
//
// Solvers accept `const SolverContext&`, so a temporary
// `opt.run(match::SolverContext(rng))` works at call sites that only
// have an RNG.  The old per-solver `(rng)` / `(rng, stop)` signatures
// were removed after one deprecation release (see docs/MIGRATION.md).

#include <cstdint>
#include <stdexcept>
#include <utility>

#include "core/stop.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "rng/rng.hpp"

namespace match {

namespace parallel {
class ThreadPool;
}

namespace obs {
struct SpanTimeline;
}

class SolverContext {
 public:
  SolverContext() = default;

  explicit SolverContext(rng::Rng& rng) : rng_(&rng) {}

  SolverContext(rng::Rng& rng, StopFn should_stop)
      : rng_(&rng), should_stop_(std::move(should_stop)) {}

  explicit SolverContext(StopFn should_stop)
      : should_stop_(std::move(should_stop)) {}

  // -- Chainable setters (return *this so contexts build in one line). --
  SolverContext& with_rng(rng::Rng& rng) {
    rng_ = &rng;
    return *this;
  }
  SolverContext& with_stop(StopFn should_stop) {
    should_stop_ = std::move(should_stop);
    return *this;
  }
  SolverContext& with_sink(obs::EventSink* sink) {
    sink_ = sink;
    return *this;
  }
  SolverContext& with_metrics(obs::MetricsRegistry* metrics) {
    metrics_ = metrics;
    return *this;
  }
  SolverContext& with_pool(parallel::ThreadPool* pool) {
    pool_ = pool;
    return *this;
  }
  SolverContext& with_run_id(std::uint64_t run_id) {
    run_id_ = run_id;
    return *this;
  }
  /// Attaches the request's span timeline (single-writer: the worker
  /// thread running the solver owns it for the duration of the call).
  SolverContext& with_span(obs::SpanTimeline* span) {
    span_ = span;
    return *this;
  }

  // -- Accessors. --
  bool has_rng() const { return rng_ != nullptr; }

  rng::Rng& rng() const {
    if (rng_ == nullptr) {
      throw std::logic_error(
          "SolverContext: solver requires an RNG but none was attached "
          "(use SolverContext(rng) or with_rng)");
    }
    return *rng_;
  }

  const StopFn& stop_fn() const { return should_stop_; }

  /// Polls the stop hook; false when no hook is attached.
  bool stop_requested() const { return should_stop_ && should_stop_(); }

  obs::EventSink* sink() const { return sink_; }
  obs::MetricsRegistry* metrics() const { return metrics_; }
  parallel::ThreadPool* pool() const { return pool_; }
  std::uint64_t run_id() const { return run_id_; }
  obs::SpanTimeline* span() const { return span_; }

  /// True when an event sink is attached (solvers may restructure loops
  /// for phase timing only in this case).
  bool traced() const { return sink_ != nullptr; }

  /// Emits an event if a sink is attached; no-op otherwise.
  void emit(const obs::Event& event) const {
    if (sink_ != nullptr) sink_->emit(event);
  }

 private:
  rng::Rng* rng_ = nullptr;
  StopFn should_stop_;
  obs::EventSink* sink_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  parallel::ThreadPool* pool_ = nullptr;
  std::uint64_t run_id_ = 0;
  obs::SpanTimeline* span_ = nullptr;
};

}  // namespace match
