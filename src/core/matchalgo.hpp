#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/ce_params.hpp"
#include "core/genperm.hpp"
#include "core/run_summary.hpp"
#include "core/solver_context.hpp"
#include "core/stochastic_matrix.hpp"
#include "core/stop.hpp"
#include "rng/rng.hpp"
#include "sim/batch_eval.hpp"
#include "sim/evaluator.hpp"
#include "sim/mapping.hpp"

namespace match::core {

/// Why a MaTCH run stopped.
enum class StopReason {
  kRowMaxStable,   ///< eq. (12): per-row maxima unchanged for `c` iterations
  kDegenerate,     ///< every row collapsed onto one resource (Fig. 3 endpoint)
  kGammaStable,    ///< Fig. 2 step 4: γ̂ unchanged for `k` iterations
  kMaxIterations,  ///< safety cap reached
  kCancelled,      ///< the caller's `should_stop` hook fired (deadline etc.)
  kTargetReached,  ///< best-so-far reached `MatchParams::target_cost`
};

/// Human-readable name of a stop reason (for logs and bench output).
const char* to_string(StopReason reason);

/// Tunable parameters of the MaTCH heuristic.  Defaults reproduce the
/// paper's published configuration.  The cross-solver knobs — `rho`,
/// `zeta`, `sample_size` (0 → the paper's 2·n²), `parallel`,
/// `target_cost`, `sampler`, `eval_backend` — live in the
/// `core::CeCommonParams` base (core/ce_params.hpp); MaTCH consumes all
/// of them.
struct MatchParams : CeCommonParams {
  /// Dynamic smoothing exponent q (de Boer et al. §5 / Rubinstein): when
  /// > 0, the effective smoothing decays over iterations,
  /// ζ_k = ζ · (1 − (1 − 1/(k+1))^q), giving aggressive early updates
  /// and gentle late ones.  0 (default) keeps the paper's constant ζ.
  double dynamic_smoothing_q = 0.0;

  /// The paper's `c`: iterations the per-row maxima must stay unchanged.
  std::size_t stability_window = 5;

  /// The paper's generic-CE stop (Fig. 2 step 4): iterations the elite
  /// threshold γ̂ must stay unchanged.  Needed because eq. (12) alone
  /// cannot fire on instances with several optimal mappings, where P
  /// legitimately converges to a mixture over optima and the row maxima
  /// keep fluctuating (see DESIGN.md §3).
  std::size_t gamma_stall_window = 10;

  /// Tolerance for "unchanged" in the stability check (the paper compares
  /// floats for equality; see DESIGN.md).
  double stability_eps = 1e-6;

  /// ε for the degeneracy early-out: stop once every row max ≥ 1 − ε.
  double degeneracy_eps = 1e-3;

  /// Hard iteration cap.
  std::size_t max_iterations = 1000;

  /// GenPerm visits tasks in random order (paper behavior).  Fixed order
  /// is exposed for the ablation study.
  bool random_task_order = true;

  /// Ablation switch: use the literal Fig.-5 elite rule (sort descending,
  /// γ = s_{⌊ρN⌋}) instead of the standard best-ρ-fraction reading.  The
  /// literal rule keeps ~(1−ρ)·N samples "elite" and barely optimizes;
  /// see DESIGN.md §3.
  bool paper_literal_elite = false;

  /// Throws `std::invalid_argument` when a field is out of range.
  void validate() const;
};

/// Per-iteration convergence record.
struct IterationStats {
  std::size_t iteration = 0;
  double gamma = 0.0;          ///< elite threshold γ_k
  double iter_best = 0.0;      ///< best cost in this batch
  double best_so_far = 0.0;    ///< best cost over all batches
  double mean_entropy = 0.0;   ///< mean row entropy of P (bits)
  double min_row_max = 0.0;    ///< degeneracy measure of P
  double row_max_mean = 0.0;   ///< mean over rows of max_j p_ij
  std::size_t elite_count = 0;
};

/// Outcome of a MaTCH run.  `best_cost` (the makespan Exec^χ),
/// `iterations`, `cancelled`, and `degenerate` live in the `RunSummary`
/// base; `cancelled`/`degenerate` mirror `stop_reason`.
struct MatchResult : RunSummary {
  sim::Mapping best_mapping;   ///< best sample observed over the whole run
  StopReason stop_reason = StopReason::kMaxIterations;
  std::vector<IterationStats> history;
  StochasticMatrix final_matrix;
  double elapsed_seconds = 0.0;
};

/// The MaTCH heuristic (paper Fig. 5): cross-entropy optimization over
/// permutation mappings.
///
/// ```
/// sim::CostEvaluator eval(tig, platform);
/// core::MatchOptimizer matcher(eval);
/// rng::Rng rng(42);
/// core::MatchResult r = matcher.run(match::SolverContext(rng));
/// ```
///
/// Runs are deterministic for a fixed seed, independent of the number of
/// worker threads, and independent of whether telemetry is attached.
class MatchOptimizer {
 public:
  /// Called after each iteration's matrix update with the current P;
  /// used by the Fig.-3 reproduction to snapshot the matrix evolution.
  using TraceFn =
      std::function<void(const IterationStats&, const StochasticMatrix&)>;

  /// Alias for `match::StopFn` (core/stop.hpp).  The hook is supplied
  /// via `SolverContext(rng, stop)` and polled once per iteration before
  /// the batch is drawn; returning true stops the run with
  /// `StopReason::kCancelled` and the best mapping seen so far.  When it
  /// fires before the first batch, a single GenPerm draw is evaluated so
  /// the result always carries a valid permutation.
  using StopFn = match::StopFn;

  /// The evaluator must describe a square instance (|V_t| = |V_r|);
  /// throws `std::invalid_argument` otherwise.
  explicit MatchOptimizer(const sim::CostEvaluator& eval,
                          MatchParams params = {});

  void set_trace(TraceFn trace) { trace_ = std::move(trace); }

  /// Replaces the uniform P_0 with a caller-supplied starting matrix
  /// (must be n x n row-stochastic).  Used by the warm-start re-mapper
  /// (core/rematch.hpp) to bias the search around an incumbent mapping.
  void set_initial_matrix(StochasticMatrix p0);

  /// Pins `task` to `resource` for the whole run (e.g. a stage bound to
  /// a node holding a license or a dataset).  Pinned resources are
  /// withdrawn from every other task's draws.  Pins must name distinct
  /// resources; throws `std::invalid_argument` on conflicts.
  void set_pin(graph::NodeId task, graph::NodeId resource);
  void clear_pins();

  const MatchParams& params() const noexcept { return params_; }

  /// Effective batch size N for this instance.
  std::size_t effective_sample_size() const noexcept { return sample_size_; }

  /// Runs MaTCH to convergence.  The context supplies the RNG stream
  /// (required), stop hook, thread pool, and optional telemetry; with a
  /// sink/metrics pair attached the run emits per-iteration events
  /// (γ, bests, elite spread, P row-max mean and entropy) and
  /// draw/cost/sort/update phase timings without perturbing the RNG
  /// stream.
  MatchResult run(const SolverContext& ctx);

 private:
  const sim::CostEvaluator* eval_;
  MatchParams params_;
  std::size_t n_;
  std::size_t sample_size_;
  TraceFn trace_;
  StochasticMatrix initial_;          ///< empty -> uniform
  std::vector<graph::NodeId> pins_;   ///< empty -> no pins
};

}  // namespace match::core
