#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/run_summary.hpp"
#include "core/solver_context.hpp"
#include "core/stop.hpp"
#include "obs/scoped_timer.hpp"
#include "rng/rng.hpp"

namespace match::core {

/// Parameters of the generic CE optimization loop (paper Fig. 2).
struct CeDriverParams {
  double rho = 0.1;               ///< elite fraction
  double zeta = 0.7;              ///< smoothing factor (1 = coarse update)
  std::size_t sample_size = 256;  ///< N per iteration
  std::size_t max_iterations = 500;
  /// Stop when γ has not improved for this many consecutive iterations
  /// (the generic analogue of the paper's eq. (12) stability check).
  std::size_t gamma_stall_window = 8;
  double degeneracy_eps = 1e-3;
  /// Stop once best-so-far ≤ this value (0 — the default — disables the
  /// check); mirrors `MatchParams::target_cost` for the generic loop.
  double target_cost = 0.0;

  void validate() const {
    if (!(rho > 0.0 && rho < 1.0)) throw std::invalid_argument("CE: rho");
    if (!(zeta > 0.0 && zeta <= 1.0)) throw std::invalid_argument("CE: zeta");
    if (sample_size < 2) throw std::invalid_argument("CE: sample_size");
    if (max_iterations == 0) throw std::invalid_argument("CE: max_iterations");
    if (gamma_stall_window == 0) throw std::invalid_argument("CE: stall");
    if (target_cost < 0.0) throw std::invalid_argument("CE: target_cost");
  }
};

/// One iteration's summary from the generic driver.
struct CeIterationStats {
  std::size_t iteration = 0;
  double gamma = 0.0;
  double iter_best = 0.0;
  double best_so_far = 0.0;
};

template <typename Sample>
struct CeResult : RunSummary {
  // best_cost / iterations / cancelled / degenerate live in RunSummary.
  Sample best{};
  std::vector<CeIterationStats> history;
};

/// Deprecated alias; use `match::StopFn` (core/stop.hpp).
using CeStopFn = match::StopFn;

/// Generic CE minimization loop over any `Problem` type providing:
///
/// ```
/// using Sample = ...;                       // a candidate solution
/// Sample draw(rng::Rng&) const;             // sample from current pmf
/// double cost(const Sample&) const;         // performance (minimized)
/// void update(const std::vector<const Sample*>& elites, double zeta);
///                                           // re-estimate + smooth pmf
/// bool degenerate(double eps) const;        // pmf has collapsed
/// ```
///
/// MaTCH itself is a hand-specialized instance of this loop (batch
/// parallelism, permutation constraints); the driver exists so the CE
/// framework of the paper's §3 is usable on other COPs — the library
/// ships a max-cut adapter as the worked example.
///
/// The context supplies the RNG stream (required), an optional stop hook
/// (polled once per iteration; best-so-far on cancel), and optional
/// telemetry: when a sink/metrics pair is attached the loop emits one
/// `kIteration` event per iteration plus draw/cost/sort/update phase
/// timings.  Tracing never touches the RNG stream, so a traced run's
/// result is identical to an untraced one.
template <typename Problem>
CeResult<typename Problem::Sample> run_ce(Problem& problem,
                                          const CeDriverParams& params,
                                          const SolverContext& ctx) {
  params.validate();
  using Sample = typename Problem::Sample;

  rng::Rng& rng = ctx.rng();
  obs::PhaseProbe probe(ctx.sink(), ctx.metrics(), "ce", ctx.run_id());
  obs::Counter* iter_counter =
      ctx.metrics() != nullptr ? &ctx.metrics()->counter("ce.iterations") : nullptr;

  CeResult<Sample> result;
  std::vector<Sample> samples(params.sample_size);
  std::vector<double> costs(params.sample_size);
  std::vector<std::size_t> order(params.sample_size);

  double prev_gamma = std::numeric_limits<double>::infinity();
  std::size_t stall = 0;

  for (std::size_t iter = 0; iter < params.max_iterations; ++iter) {
    if (ctx.stop_requested()) {
      result.cancelled = true;
      break;
    }
    probe.start_iteration(iter);
    for (std::size_t i = 0; i < params.sample_size; ++i) {
      samples[i] = problem.draw(rng);
    }
    probe.split("draw");
    // Problems that can evaluate a whole batch at once (SoA re-pack, SIMD
    // kernels, thread-pool fan-out) expose `costs(samples, out, ctx)`; the
    // driver prefers it and falls back to the per-sample loop otherwise.
    if constexpr (requires {
                    problem.costs(samples, std::span<double>(costs), ctx);
                  }) {
      problem.costs(samples, std::span<double>(costs), ctx);
    } else {
      for (std::size_t i = 0; i < params.sample_size; ++i) {
        costs[i] = problem.cost(samples[i]);
      }
    }
    probe.split("cost");

    // Selection-based elite cut: only the ⌈ρN⌉ smallest costs matter, so
    // an O(N) nth_element replaces the full O(N log N) sort; the elite
    // prefix is then sorted ascending (O(ρN log ρN)) to preserve the
    // elite ordering the update hook used to see.
    std::iota(order.begin(), order.end(), std::size_t{0});
    const std::size_t rho_count = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::floor(params.rho * static_cast<double>(params.sample_size))));
    const auto by_cost = [&](std::size_t a, std::size_t b) {
      return costs[a] < costs[b];
    };
    std::nth_element(order.begin(),
                     order.begin() + static_cast<std::ptrdiff_t>(rho_count - 1),
                     order.end(), by_cost);
    std::sort(order.begin(),
              order.begin() + static_cast<std::ptrdiff_t>(rho_count), by_cost);
    probe.split("sort");

    const double gamma = costs[order[rho_count - 1]];

    if (costs[order[0]] < result.best_cost) {
      result.best_cost = costs[order[0]];
      result.best = samples[order[0]];
    }

    // Elite set = the best ⌈ρN⌉ samples by the sorted order (eq. 11's
    // ρ-quantile).  Selecting by `costs[i] <= gamma` instead would admit
    // *every* tie at γ, inflating the elite set by an amount that depends
    // on duplicate costs and destabilizing the update.
    std::vector<const Sample*> elites;
    elites.reserve(rho_count);
    for (std::size_t k = 0; k < rho_count; ++k) {
      elites.push_back(&samples[order[k]]);
    }
    problem.update(elites, params.zeta);
    probe.split("update");

    result.history.push_back(CeIterationStats{iter, gamma, costs[order[0]],
                                              result.best_cost});
    result.iterations = iter + 1;
    if (iter_counter != nullptr) iter_counter->add();
    // The generic driver has no stochastic matrix, so row_max_mean and
    // entropy stay 0; the MaTCH-specialized loop fills them in.
    ctx.emit(obs::Event::iteration_event(
        ctx.run_id(), "ce", iter, gamma, costs[order[0]], result.best_cost,
        gamma - costs[order[0]], 0.0, 0.0, rho_count));

    if (params.target_cost > 0.0 && result.best_cost <= params.target_cost) {
      break;
    }

    stall = (gamma < prev_gamma - 1e-12) ? 0 : stall + 1;
    prev_gamma = std::min(prev_gamma, gamma);

    if (problem.degenerate(params.degeneracy_eps)) {
      result.degenerate = true;
      break;
    }
    if (stall >= params.gamma_stall_window) break;
  }
  if (result.iterations == 0 && !std::isfinite(result.best_cost)) {
    // Cancelled before the first batch completed: draw a single sample so
    // the caller always receives a valid best-so-far solution.  The extra
    // `cost()` call runs after the deadline already expired — flag it so
    // operators can see deadline budgets are too tight for even one batch.
    result.best = problem.draw(rng);
    result.best_cost = problem.cost(result.best);
    ctx.emit(obs::Event::fallback_draw(ctx.run_id(), "ce"));
    if (ctx.metrics() != nullptr) {
      ctx.metrics()->counter("solver.fallback_draws").add();
    }
  }
  return result;
}

}  // namespace match::core
