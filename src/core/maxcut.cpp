#include "core/maxcut.hpp"

#include <algorithm>
#include <stdexcept>

namespace match::core {

MaxCutProblem::MaxCutProblem(const graph::Graph& g) : g_(&g) {
  if (g.num_nodes() < 2) {
    throw std::invalid_argument("MaxCutProblem: need >= 2 nodes");
  }
  p_.assign(g.num_nodes(), 0.5);
  p_[0] = 0.0;  // symmetry breaking: node 0 always on side 0
}

MaxCutProblem::Sample MaxCutProblem::draw(rng::Rng& rng) const {
  Sample s(p_.size());
  for (std::size_t i = 0; i < p_.size(); ++i) {
    s[i] = rng.bernoulli(p_[i]) ? 1 : 0;
  }
  return s;
}

double MaxCutProblem::cut_weight(const Sample& s) const {
  double w = 0.0;
  for (const graph::Edge& e : g_->edge_list()) {
    if (s[e.u] != s[e.v]) w += e.weight;
  }
  return w;
}

double MaxCutProblem::cost(const Sample& s) const { return -cut_weight(s); }

void MaxCutProblem::update(const std::vector<const Sample*>& elites,
                           double zeta) {
  if (elites.empty()) return;
  const double inv = 1.0 / static_cast<double>(elites.size());
  for (std::size_t i = 1; i < p_.size(); ++i) {
    double freq = 0.0;
    for (const Sample* s : elites) freq += static_cast<double>((*s)[i]);
    p_[i] = zeta * (freq * inv) + (1.0 - zeta) * p_[i];
  }
}

bool MaxCutProblem::degenerate(double eps) const {
  return std::all_of(p_.begin() + 1, p_.end(), [eps](double p) {
    return p <= eps || p >= 1.0 - eps;
  });
}

double MaxCutProblem::brute_force_max_cut(const graph::Graph& g) {
  const std::size_t n = g.num_nodes();
  if (n > 24) {
    throw std::invalid_argument("brute_force_max_cut: too many nodes");
  }
  const auto edges = g.edge_list();
  double best = 0.0;
  // Node 0 fixed on side 0 halves the enumeration.
  const std::uint64_t limit = 1ULL << (n - 1);
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    double w = 0.0;
    for (const graph::Edge& e : edges) {
      const bool su = e.u == 0 ? false : ((mask >> (e.u - 1)) & 1) != 0;
      const bool sv = e.v == 0 ? false : ((mask >> (e.v - 1)) & 1) != 0;
      if (su != sv) w += e.weight;
    }
    best = std::max(best, w);
  }
  return best;
}

}  // namespace match::core
