#pragma once

// CE for the traveling-salesman problem, the other classic application
// of the cross-entropy method to permutation-structured COPs (de Boer et
// al.'s tutorial, which the paper borrows its notation from, develops CE
// on exactly this problem).  Included to show the library's CE core is a
// faithful implementation of the general method, not just of MaTCH:
// here the stochastic matrix parameterizes *transitions* (row = current
// city) instead of assignments (row = task).

#include <array>
#include <cstddef>
#include <vector>

#include "core/ce_driver.hpp"
#include "core/stochastic_matrix.hpp"
#include "graph/graph.hpp"
#include "rng/rng.hpp"

namespace match::core {

/// Symmetric TSP over an explicit distance matrix.
class TspProblem {
 public:
  using Sample = std::vector<graph::NodeId>;  ///< visiting order, starts at 0

  /// `distances` is a row-major n x n matrix; diagonal ignored.
  TspProblem(std::size_t n, std::vector<double> distances);

  /// Random Euclidean instance: n points uniform in the unit square.
  static TspProblem random_euclidean(std::size_t n, rng::Rng& rng);

  std::size_t size() const noexcept { return n_; }
  double distance(graph::NodeId a, graph::NodeId b) const {
    return dist_[a * n_ + b];
  }

  // --- CE driver interface -------------------------------------------
  Sample draw(rng::Rng& rng) const;
  double cost(const Sample& tour) const;  ///< closed-tour length
  void update(const std::vector<const Sample*>& elites, double zeta);
  bool degenerate(double eps) const;

  const StochasticMatrix& transition_matrix() const noexcept { return p_; }

  // --- Reference algorithms (baselines & test oracles) ----------------
  /// Greedy nearest-neighbor tour from city 0.
  Sample nearest_neighbor_tour() const;

  /// 2-opt local search from `tour` until no improving exchange remains.
  Sample two_opt(Sample tour) const;

  /// Exact optimum by enumeration; n <= 11 only.
  double brute_force_optimum() const;

  /// True iff `tour` visits each city exactly once, starting at 0.
  bool is_valid_tour(const Sample& tour) const;

 private:
  std::size_t n_;
  std::vector<double> dist_;
  StochasticMatrix p_;  ///< transition probabilities, row = current city
};

}  // namespace match::core
