#include "core/genperm.hpp"

#include <cassert>
#include <stdexcept>

namespace match::core {

GenPermSampler::GenPermSampler(std::size_t n) : n_(n) {
  if (n == 0) throw std::invalid_argument("GenPermSampler: n == 0");
  order_.resize(n);
  for (std::size_t i = 0; i < n; ++i) order_[i] = i;
  free_.reserve(n);
  weights_.reserve(n);
}

void GenPermSampler::sample(const StochasticMatrix& p, rng::Rng& rng,
                            std::span<graph::NodeId> out,
                            bool random_task_order,
                            std::span<const graph::NodeId> pins) {
  assert(p.rows() == n_ && p.cols() == n_);
  assert(out.size() == n_);
  assert(pins.empty() || pins.size() == n_);

  if (random_task_order) {
    rng.shuffle(std::span<std::size_t>(order_));
  } else {
    for (std::size_t i = 0; i < n_; ++i) order_[i] = i;
  }

  free_.clear();
  if (pins.empty()) {
    for (std::size_t j = 0; j < n_; ++j) {
      free_.push_back(static_cast<graph::NodeId>(j));
    }
  } else {
    std::vector<char> taken(n_, 0);
    for (std::size_t t = 0; t < n_; ++t) {
      if (pins[t] != kNoPin) {
        assert(pins[t] < n_ && !taken[pins[t]] && "pins must be distinct");
        out[t] = pins[t];
        taken[pins[t]] = 1;
      }
    }
    for (std::size_t j = 0; j < n_; ++j) {
      if (!taken[j]) free_.push_back(static_cast<graph::NodeId>(j));
    }
  }

  for (std::size_t step = 0; step < n_; ++step) {
    const std::size_t task = order_[step];
    if (!pins.empty() && pins[task] != kNoPin) continue;
    const auto row = p.row(task);

    weights_.resize(free_.size());
    double total = 0.0;
    for (std::size_t k = 0; k < free_.size(); ++k) {
      weights_[k] = row[free_[k]];
      total += weights_[k];
    }

    std::size_t pick;
    if (total > 0.0) {
      pick = rng.weighted_pick(weights_, total);
    } else {
      pick = static_cast<std::size_t>(rng.below(free_.size()));
    }

    out[task] = free_[pick];
    // Remove the chosen resource in O(1); free_ order is irrelevant.
    free_[pick] = free_.back();
    free_.pop_back();
  }
}

}  // namespace match::core
