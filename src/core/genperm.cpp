#include "core/genperm.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace match::core {

const char* to_string(SamplerBackend backend) {
  switch (backend) {
    case SamplerBackend::kScan:
      return "scan";
    case SamplerBackend::kAlias:
      return "alias";
  }
  return "unknown";
}

void RowAliasTables::build(const StochasticMatrix& p) {
  rows_ = p.rows();
  cols_ = p.cols();
  cells_.resize(rows_ * cols_);
  small_.reserve(cols_);
  large_.reserve(cols_);

  const std::size_t n = cols_;
  for (std::size_t i = 0; i < rows_; ++i) {
    const auto row = p.row(i);
    Cell* cells = cells_.data() + i * n;
    small_.clear();
    large_.clear();
    // Vose's method: scale entries by n, pair each deficit bucket with a
    // surplus donor.  Row sums are 1 (within tolerance), so the worklists
    // balance; fp drift leaves a few ~1.0 leftovers, which become
    // self-aliased full buckets.
    for (std::size_t j = 0; j < n; ++j) {
      cells[j].prob = row[j] * static_cast<double>(n);
      cells[j].alias = static_cast<graph::NodeId>(j);
      if (cells[j].prob < 1.0) {
        small_.push_back(static_cast<graph::NodeId>(j));
      } else {
        large_.push_back(static_cast<graph::NodeId>(j));
      }
    }
    while (!small_.empty() && !large_.empty()) {
      const graph::NodeId s = small_.back();
      small_.pop_back();
      const graph::NodeId l = large_.back();
      cells[s].alias = l;
      cells[l].prob -= 1.0 - cells[s].prob;
      if (cells[l].prob < 1.0) {
        large_.pop_back();
        small_.push_back(l);
      }
    }
    // Leftovers on either list carry (numerically) full buckets.
    for (const graph::NodeId j : small_) cells[j].prob = 1.0;
    for (const graph::NodeId j : large_) cells[j].prob = 1.0;
  }
}

GenPermSampler::GenPermSampler(std::size_t n) : n_(n) {
  if (n == 0) throw std::invalid_argument("GenPermSampler: n == 0");
  std::size_t root = 1;
  while ((root + 1) * (root + 1) <= n) ++root;  // floor(sqrt(n)), integer-only
  scan_cutoff_ = std::max(kSmallFreeCutoff, 2 * root);
  order_.resize(n);
  for (std::size_t i = 0; i < n; ++i) order_[i] = i;
  free_.reserve(n);
  prefix_.reserve(n);
  taken_.reserve(n);
  pos_.reserve(n);
}

void GenPermSampler::begin_draw(rng::Rng& rng, std::span<graph::NodeId> out,
                                bool random_task_order,
                                std::span<const graph::NodeId> pins,
                                bool track_positions) {
  if (random_task_order) {
    rng.shuffle(std::span<std::size_t>(order_));
  } else {
    for (std::size_t i = 0; i < n_; ++i) order_[i] = i;
  }

  free_.clear();
  if (pins.empty()) {
    for (std::size_t j = 0; j < n_; ++j) {
      free_.push_back(static_cast<graph::NodeId>(j));
    }
    if (track_positions) taken_.assign(n_, 0);
  } else {
    taken_.assign(n_, 0);
    for (std::size_t t = 0; t < n_; ++t) {
      if (pins[t] != kNoPin) {
        assert(pins[t] < n_ && !taken_[pins[t]] && "pins must be distinct");
        out[t] = pins[t];
        taken_[pins[t]] = 1;
      }
    }
    for (std::size_t j = 0; j < n_; ++j) {
      if (!taken_[j]) free_.push_back(static_cast<graph::NodeId>(j));
    }
  }
  if (track_positions) {
    pos_.resize(n_);
    for (std::size_t k = 0; k < free_.size(); ++k) pos_[free_[k]] = static_cast<graph::NodeId>(k);
  }
}

std::size_t GenPermSampler::pick_from_free_scan(std::span<const double> row,
                                                rng::Rng& rng) {
  const std::size_t f = free_.size();
  prefix_.resize(f);
  double total = 0.0;
  for (std::size_t k = 0; k < f; ++k) {
    total += row[free_[k]];
    prefix_[k] = total;
  }
  if (total > 0.0) {
    // One uniform per pick, exactly like the legacy subtraction scan, but
    // the pick itself is a binary search over the prefix sums stored
    // during the (single) weight gather.
    const double target = rng.uniform() * total;
    const auto it =
        std::upper_bound(prefix_.begin(), prefix_.end(), target);
    std::size_t pick = static_cast<std::size_t>(it - prefix_.begin());
    if (pick >= f) pick = f - 1;  // absorbs floating-point round-off
    return pick;
  }
  return static_cast<std::size_t>(rng.below(f));
}

void GenPermSampler::sample(const StochasticMatrix& p, rng::Rng& rng,
                            std::span<graph::NodeId> out,
                            bool random_task_order,
                            std::span<const graph::NodeId> pins) {
  assert(p.rows() == n_ && p.cols() == n_);
  assert(out.size() == n_);
  assert(pins.empty() || pins.size() == n_);

  begin_draw(rng, out, random_task_order, pins, /*track_positions=*/false);

  for (std::size_t step = 0; step < n_; ++step) {
    const std::size_t task = order_[step];
    if (!pins.empty() && pins[task] != kNoPin) continue;
    const std::size_t pick = pick_from_free_scan(p.row(task), rng);
    out[task] = free_[pick];
    // Remove the chosen resource in O(1); free_ order is irrelevant.
    free_[pick] = free_.back();
    free_.pop_back();
  }
}

void GenPermSampler::sample(const StochasticMatrix& p,
                            const RowAliasTables& tables, rng::Rng& rng,
                            std::span<graph::NodeId> out,
                            bool random_task_order,
                            std::span<const graph::NodeId> pins) {
  assert(p.rows() == n_ && p.cols() == n_);
  assert(tables.rows() == n_ && tables.cols() == n_);
  assert(out.size() == n_);
  assert(pins.empty() || pins.size() == n_);

  begin_draw(rng, out, random_task_order, pins, /*track_positions=*/true);

  for (std::size_t step = 0; step < n_; ++step) {
    const std::size_t task = order_[step];
    if (!pins.empty() && pins[task] != kNoPin) continue;
    const std::size_t f = free_.size();

    std::size_t chosen = n_;  // sentinel: not yet decided
    if (f == 1) {
      chosen = free_[0];
    } else if (f > scan_cutoff_) {
      // Rejection against the taken set: conditioned on acceptance, the
      // draw is exactly the row renormalized over free resources.  Two
      // candidates per round: their alias-cell loads are independent, so
      // the out-of-order core overlaps the cache misses that dominate
      // this loop (the candidates are i.i.d.; checking them in draw
      // order keeps the accepted value's distribution unchanged).
      for (std::size_t attempt = 0; attempt < kMaxRejections; attempt += 2) {
        const std::size_t j1 = tables.sample(task, rng);
        const std::size_t j2 = tables.sample(task, rng);
        if (!taken_[j1]) {
          chosen = j1;
          break;
        }
        if (!taken_[j2]) {
          chosen = j2;
          break;
        }
      }
    }
    std::size_t pick;
    if (chosen != n_) {
      pick = pos_[chosen];
    } else {
      // Exact fallback — small free set, or the row's mass sits almost
      // entirely on taken resources.  Falling back to the exact
      // conditional keeps the overall distribution identical.
      pick = pick_from_free_scan(p.row(task), rng);
      chosen = free_[pick];
    }

    out[task] = static_cast<graph::NodeId>(chosen);
    taken_[chosen] = 1;
    const graph::NodeId last = free_.back();
    free_[pick] = last;
    pos_[last] = static_cast<graph::NodeId>(pick);
    free_.pop_back();
  }
}

}  // namespace match::core
