#include "core/matchalgo.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>

#include "core/genperm.hpp"
#include "obs/scoped_timer.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/scratch.hpp"
#include "rng/splitmix64.hpp"

namespace match::core {

void MatchParams::validate() const {
  validate_common("MatchParams");
  if (stability_window == 0) {
    throw std::invalid_argument("MatchParams: stability_window must be >= 1");
  }
  if (gamma_stall_window == 0) {
    throw std::invalid_argument("MatchParams: gamma_stall_window must be >= 1");
  }
  if (stability_eps < 0.0 || degeneracy_eps <= 0.0) {
    throw std::invalid_argument("MatchParams: bad epsilon");
  }
  if (dynamic_smoothing_q < 0.0) {
    throw std::invalid_argument("MatchParams: dynamic_smoothing_q < 0");
  }
  if (max_iterations == 0) {
    throw std::invalid_argument("MatchParams: max_iterations must be >= 1");
  }
}

const char* to_string(StopReason reason) {
  switch (reason) {
    case StopReason::kRowMaxStable:
      return "row-max-stable";
    case StopReason::kDegenerate:
      return "degenerate";
    case StopReason::kGammaStable:
      return "gamma-stable";
    case StopReason::kMaxIterations:
      return "max-iterations";
    case StopReason::kCancelled:
      return "cancelled";
    case StopReason::kTargetReached:
      return "target-reached";
  }
  return "unknown";
}

MatchOptimizer::MatchOptimizer(const sim::CostEvaluator& eval,
                               MatchParams params)
    : eval_(&eval), params_(params), n_(eval.num_tasks()) {
  params_.validate();
  if (eval.num_resources() != n_) {
    throw std::invalid_argument(
        "MatchOptimizer: requires |V_t| == |V_r| (permutation mapping)");
  }
  sample_size_ = params_.sample_size != 0 ? params_.sample_size : 2 * n_ * n_;
  if (sample_size_ < 2) sample_size_ = 2;
}

namespace {

/// Deterministic per-sample seed: mixing the iteration seed with the
/// sample index makes the run independent of thread count and chunking.
std::uint64_t sample_seed(std::uint64_t iter_seed, std::uint64_t index) {
  rng::SplitMix64 mixer(iter_seed ^ (index * 0x9e3779b97f4a7c15ULL));
  return mixer.next();
}

/// Per-worker reusable hot-loop state, handed out by a ScratchPool: the
/// GenPerm sampler (scratch-heavy, hoisted out of the chunk lambdas so
/// it is built once per worker per run instead of once per chunk per
/// iteration) and the contiguous draw row scattered into the SoA block.
/// Everything here is fully overwritten per use, so timing-dependent
/// chunk→worker assignment cannot perturb results.
struct MatchWorker {
  GenPermSampler sampler;
  std::vector<graph::NodeId> row;  ///< one GenPerm draw, pre-SoA-store

  explicit MatchWorker(std::size_t n) : sampler(n), row(n) {}
};

}  // namespace

void MatchOptimizer::set_initial_matrix(StochasticMatrix p0) {
  if (p0.rows() != n_ || p0.cols() != n_) {
    throw std::invalid_argument("set_initial_matrix: shape mismatch");
  }
  if (!p0.is_row_stochastic()) {
    throw std::invalid_argument("set_initial_matrix: not row-stochastic");
  }
  initial_ = std::move(p0);
}

void MatchOptimizer::set_pin(graph::NodeId task, graph::NodeId resource) {
  if (task >= n_ || resource >= n_) {
    throw std::invalid_argument("set_pin: index out of range");
  }
  if (pins_.empty()) pins_.assign(n_, GenPermSampler::kNoPin);
  for (std::size_t t = 0; t < n_; ++t) {
    if (t != task && pins_[t] == resource) {
      throw std::invalid_argument("set_pin: resource already pinned");
    }
  }
  pins_[task] = resource;
}

void MatchOptimizer::clear_pins() { pins_.clear(); }

MatchResult MatchOptimizer::run(const SolverContext& ctx) {
  const auto t_start = std::chrono::steady_clock::now();
  rng::Rng& rng = ctx.rng();
  const std::size_t n = n_;
  const std::size_t batch = sample_size_;

  const match::StopFn& should_stop = ctx.stop_fn();
  obs::PhaseProbe probe(ctx.sink(), ctx.metrics(), "match", ctx.run_id());
  obs::Counter* iter_counter = ctx.metrics() != nullptr
                                   ? &ctx.metrics()->counter("match.iterations")
                                   : nullptr;
  ctx.emit(obs::Event::run_start(ctx.run_id(), "match"));

  StochasticMatrix p = initial_.rows() == n ? initial_
                                            : StochasticMatrix::uniform(n, n);

  // Samples live in SoA (transposed task-major) form for the whole
  // iteration: GenPerm draws scatter in, the batch evaluator and the
  // elite count both read task rows directly, and only the winning lane
  // is ever gathered back out.
  sim::SampleBlock block(n, batch);
  std::vector<double> costs(batch);
  std::vector<double> gamma_scratch(batch);  // nth_element workspace
  std::vector<double> counts(n * n);
  std::vector<graph::NodeId> best_row(n);
  std::vector<double> load;  // scalar recompute scratch (serial use only)
  std::vector<std::size_t> elite_idx;
  elite_idx.reserve(batch);

  // One batch evaluator for the whole run: the backend is resolved once
  // (kAuto -> feature probe) and reported once for metrics dashboards.
  sim::BatchEvaluator batch_eval(*eval_, params_.eval_backend);
  if (ctx.metrics() != nullptr) {
    ctx.metrics()
        ->counter(std::string("solver.backend.") + batch_eval.backend_name())
        .add();
  }

  // Per-worker state outlives the iteration loop, so samplers and
  // scratch buffers are constructed at most once per worker thread for
  // the whole run (not once per chunk per iteration).
  parallel::ScratchPool<MatchWorker> workers(
      [n] { return std::make_unique<MatchWorker>(n); });
  // Alias tables for the kAlias backend: rebuilt from P once per
  // iteration (O(n²), the cost of a *single* legacy draw) and shared
  // read-only across the whole batch.
  RowAliasTables alias_tables;
  const bool use_alias = params_.sampler == SamplerBackend::kAlias;

  MatchResult result;
  result.best_cost = std::numeric_limits<double>::infinity();
  result.history.reserve(64);

  std::vector<double> prev_row_max(n, -1.0);
  std::size_t stable_iters = 0;
  double prev_gamma = std::numeric_limits<double>::quiet_NaN();
  std::size_t gamma_stall = 0;

  parallel::ForOptions for_opts;
  for_opts.pool = ctx.pool();
  if (!params_.parallel) {
    // Force the serial path by raising the cutoff above any batch size.
    for_opts.serial_cutoff = std::numeric_limits<std::size_t>::max();
  }

  for (std::size_t iter = 0; iter < params_.max_iterations; ++iter) {
    if (should_stop && should_stop()) {
      result.stop_reason = StopReason::kCancelled;
      break;
    }
    probe.start_iteration(iter);
    // --- Step 3 (Fig. 5): draw N mappings via GenPerm. -------------------
    // Each sample's RNG is seeded from (iter_seed, i) alone and cost
    // evaluation consumes no randomness, so the draw/cost phases are
    // separate passes (the SoA block decouples them) yet produce the
    // same samples and costs as the historical fused loop.
    const std::uint64_t iter_seed = rng.bits();
    if (use_alias) alias_tables.build(p);
    parallel::parallel_for_chunked(
        0, batch,
        [&](std::size_t lo, std::size_t hi, std::size_t /*chunk*/) {
          auto lease = workers.acquire();
          // The legacy code constructed a fresh sampler per chunk, and
          // the shuffled task order chains across draws; resetting it
          // at the old construction point keeps the stream bit-exact
          // and independent of which pooled worker serves the chunk.
          lease->sampler.reset_order();
          for (std::size_t i = lo; i < hi; ++i) {
            rng::Rng local(sample_seed(iter_seed, i));
            if (use_alias) {
              lease->sampler.sample(p, alias_tables, local, lease->row,
                                    params_.random_task_order, pins_);
            } else {
              lease->sampler.sample(p, local, lease->row,
                                    params_.random_task_order, pins_);
            }
            block.store_sample(i, lease->row);
          }
        },
        for_opts);
    probe.split("draw");
    batch_eval.evaluate(block, costs, for_opts);
    probe.split("cost");

    // --- Steps 4–5: pick the elite threshold γ. --------------------------
    // γ is a single order statistic and the elite set below is selected
    // by the `costs[i] <= gamma` indicator, so a full O(N log N) sort is
    // wasted work: an O(N) selection yields the bit-identical γ.
    const std::size_t rho_count = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::floor(params_.rho *
                                               static_cast<double>(batch))));
    const std::size_t kth =
        params_.paper_literal_elite
            // Literal Fig.-5 reading: sort descending, γ = s_{⌊ρN⌋}; with
            // the S ≤ γ indicator this keeps ~(1-ρ)N samples (ablation
            // only).
            ? batch - 1 - std::min(rho_count, batch - 1)
            : rho_count - 1;
    std::copy(costs.begin(), costs.end(), gamma_scratch.begin());
    std::nth_element(gamma_scratch.begin(),
                     gamma_scratch.begin() + static_cast<std::ptrdiff_t>(kth),
                     gamma_scratch.end());
    const double gamma = gamma_scratch[kth];

    // Iteration best by min-scan (smallest index wins ties, which makes
    // the tie-break deterministic where an unstable sort's was not).
    std::size_t best_index = 0;
    for (std::size_t i = 1; i < batch; ++i) {
      if (costs[i] < costs[best_index]) best_index = i;
    }
    const double iter_best = costs[best_index];
    probe.split("sort");

    if (iter_best < result.best_cost) {
      // Gather the winning lane and recompute its cost with the scalar
      // per-sample kernel, so `best_cost == makespan(best_mapping)`
      // bit-exactly under every backend (SIMD sums reassociate on
      // fractional workloads; on integer ones the recompute is a no-op).
      block.load_sample(best_index, best_row);
      const double exact = eval_->makespan(best_row, load);
      if (exact < result.best_cost) {
        result.best_cost = exact;
        result.best_mapping = sim::Mapping(
            std::vector<graph::NodeId>(best_row.begin(), best_row.end()));
      }
    }

    // --- Step 6: re-estimate P from the elite set (eq. 11). --------------
    // Collect the elite lane indices once, then accumulate counts
    // task-major straight from the SoA block: task t's counts live in
    // the disjoint slice counts[t*n, t*n + n), so the task-parallel loop
    // needs no per-worker count buffers and no reduction — and every
    // increment is an exact +1.0, so results are independent of
    // chunking and thread timing.
    elite_idx.clear();
    for (std::size_t i = 0; i < batch; ++i) {
      if (costs[i] <= gamma) elite_idx.push_back(i);
    }
    // elite >= 1 by construction of gamma.
    const std::size_t elite = elite_idx.size();
    std::fill(counts.begin(), counts.end(), 0.0);
    parallel::parallel_for_chunked(
        0, n,
        [&](std::size_t t_lo, std::size_t t_hi, std::size_t /*chunk*/) {
          for (std::size_t t = t_lo; t < t_hi; ++t) {
            const graph::NodeId* row = block.task_row(t);
            double* ct = counts.data() + t * n;
            for (const std::size_t i : elite_idx) ct[row[i]] += 1.0;
          }
        },
        for_opts);
    for (double& c : counts) c /= static_cast<double>(elite);
    // The counts were normalized right here, so skip the redundant
    // O(n²) row-sum revalidation of the checked factory.
    const StochasticMatrix q =
        StochasticMatrix::from_values_unchecked(n, n, counts);

    // --- Smoothing (eq. 13), optionally decayed over iterations. ---------
    double zeta_k = params_.zeta;
    if (params_.dynamic_smoothing_q > 0.0) {
      const double k = static_cast<double>(iter + 1);
      zeta_k = params_.zeta *
               (1.0 - std::pow(1.0 - 1.0 / k, params_.dynamic_smoothing_q));
      if (zeta_k <= 0.0) zeta_k = 1e-6;  // keep the blend well-defined
    }
    p.blend_from(q, zeta_k);
    probe.split("update");

    // One pass over the updated rows serves both the eq. (12) stability
    // check and the row-max-mean telemetry field.
    bool stable = true;
    double row_max_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double mu = p.row_max(i);
      row_max_sum += mu;
      if (std::abs(mu - prev_row_max[i]) > params_.stability_eps) {
        stable = false;
      }
      prev_row_max[i] = mu;
    }

    IterationStats stats;
    stats.iteration = iter;
    stats.gamma = gamma;
    stats.iter_best = iter_best;
    stats.best_so_far = result.best_cost;
    stats.mean_entropy = p.mean_entropy();
    stats.min_row_max = p.min_row_max();
    stats.row_max_mean = row_max_sum / static_cast<double>(n);
    stats.elite_count = elite;
    result.history.push_back(stats);
    if (trace_) trace_(stats, p);
    if (iter_counter != nullptr) iter_counter->add();
    ctx.emit(obs::Event::iteration_event(
        ctx.run_id(), "match", iter, gamma, iter_best, result.best_cost,
        gamma - iter_best, stats.row_max_mean, stats.mean_entropy, elite));

    result.iterations = iter + 1;

    if (params_.target_cost > 0.0 && result.best_cost <= params_.target_cost) {
      result.stop_reason = StopReason::kTargetReached;
      break;
    }

    // --- Step 8: stopping criteria. ---------------------------------------
    stable_iters = stable ? stable_iters + 1 : 0;

    if (stable_iters >= params_.stability_window) {
      result.stop_reason = StopReason::kRowMaxStable;
      break;
    }
    if (p.is_degenerate(params_.degeneracy_eps)) {
      result.stop_reason = StopReason::kDegenerate;
      break;
    }
    gamma_stall = (std::abs(gamma - prev_gamma) <= params_.stability_eps)
                      ? gamma_stall + 1
                      : 0;
    prev_gamma = gamma;
    if (gamma_stall >= params_.gamma_stall_window) {
      result.stop_reason = StopReason::kGammaStable;
      break;
    }
    result.stop_reason = StopReason::kMaxIterations;
  }

  if (result.iterations == 0 &&
      !std::isfinite(result.best_cost)) {
    // Cancelled before the first batch: evaluate one GenPerm draw so the
    // result always carries a valid permutation (service deadline
    // contract; see core/stop.hpp).
    GenPermSampler sampler(n);
    std::vector<graph::NodeId> row(n);
    rng::Rng local(rng.bits());
    sampler.sample(p, local, row, params_.random_task_order, pins_);
    result.best_cost = eval_->makespan(row);
    result.best_mapping = sim::Mapping(std::move(row));
    ctx.emit(obs::Event::fallback_draw(ctx.run_id(), "match"));
    if (ctx.metrics() != nullptr) {
      ctx.metrics()->counter("solver.fallback_draws").add();
    }
  }

  result.cancelled = result.stop_reason == StopReason::kCancelled;
  result.degenerate = result.stop_reason == StopReason::kDegenerate;
  result.final_matrix = p;
  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();
  ctx.emit(obs::Event::run_end(ctx.run_id(), "match", result.iterations,
                               result.best_cost, result.elapsed_seconds));
  return result;
}

}  // namespace match::core
