#include "core/matchalgo.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "core/genperm.hpp"
#include "obs/scoped_timer.hpp"
#include "parallel/parallel_for.hpp"
#include "rng/splitmix64.hpp"

namespace match::core {

void MatchParams::validate() const {
  if (!(rho > 0.0 && rho < 1.0)) {
    throw std::invalid_argument("MatchParams: rho must be in (0, 1)");
  }
  if (!(zeta > 0.0 && zeta <= 1.0)) {
    throw std::invalid_argument("MatchParams: zeta must be in (0, 1]");
  }
  if (stability_window == 0) {
    throw std::invalid_argument("MatchParams: stability_window must be >= 1");
  }
  if (gamma_stall_window == 0) {
    throw std::invalid_argument("MatchParams: gamma_stall_window must be >= 1");
  }
  if (stability_eps < 0.0 || degeneracy_eps <= 0.0) {
    throw std::invalid_argument("MatchParams: bad epsilon");
  }
  if (dynamic_smoothing_q < 0.0) {
    throw std::invalid_argument("MatchParams: dynamic_smoothing_q < 0");
  }
  if (max_iterations == 0) {
    throw std::invalid_argument("MatchParams: max_iterations must be >= 1");
  }
  if (target_cost < 0.0) {
    throw std::invalid_argument("MatchParams: target_cost < 0");
  }
}

const char* to_string(StopReason reason) {
  switch (reason) {
    case StopReason::kRowMaxStable:
      return "row-max-stable";
    case StopReason::kDegenerate:
      return "degenerate";
    case StopReason::kGammaStable:
      return "gamma-stable";
    case StopReason::kMaxIterations:
      return "max-iterations";
    case StopReason::kCancelled:
      return "cancelled";
    case StopReason::kTargetReached:
      return "target-reached";
  }
  return "unknown";
}

MatchOptimizer::MatchOptimizer(const sim::CostEvaluator& eval,
                               MatchParams params)
    : eval_(&eval), params_(params), n_(eval.num_tasks()) {
  params_.validate();
  if (eval.num_resources() != n_) {
    throw std::invalid_argument(
        "MatchOptimizer: requires |V_t| == |V_r| (permutation mapping)");
  }
  sample_size_ = params_.sample_size != 0 ? params_.sample_size : 2 * n_ * n_;
  if (sample_size_ < 2) sample_size_ = 2;
}

namespace {

/// Deterministic per-sample seed: mixing the iteration seed with the
/// sample index makes the run independent of thread count and chunking.
std::uint64_t sample_seed(std::uint64_t iter_seed, std::uint64_t index) {
  rng::SplitMix64 mixer(iter_seed ^ (index * 0x9e3779b97f4a7c15ULL));
  return mixer.next();
}

}  // namespace

void MatchOptimizer::set_initial_matrix(StochasticMatrix p0) {
  if (p0.rows() != n_ || p0.cols() != n_) {
    throw std::invalid_argument("set_initial_matrix: shape mismatch");
  }
  if (!p0.is_row_stochastic()) {
    throw std::invalid_argument("set_initial_matrix: not row-stochastic");
  }
  initial_ = std::move(p0);
}

void MatchOptimizer::set_pin(graph::NodeId task, graph::NodeId resource) {
  if (task >= n_ || resource >= n_) {
    throw std::invalid_argument("set_pin: index out of range");
  }
  if (pins_.empty()) pins_.assign(n_, GenPermSampler::kNoPin);
  for (std::size_t t = 0; t < n_; ++t) {
    if (t != task && pins_[t] == resource) {
      throw std::invalid_argument("set_pin: resource already pinned");
    }
  }
  pins_[task] = resource;
}

void MatchOptimizer::clear_pins() { pins_.clear(); }

MatchResult MatchOptimizer::run(const SolverContext& ctx) {
  const auto t_start = std::chrono::steady_clock::now();
  rng::Rng& rng = ctx.rng();
  const std::size_t n = n_;
  const std::size_t batch = sample_size_;

  // A context-supplied stop hook wins over the deprecated member.
  const match::StopFn& should_stop =
      ctx.stop_fn() ? ctx.stop_fn() : should_stop_;
  obs::PhaseProbe probe(ctx.sink(), ctx.metrics(), "match", ctx.run_id());
  obs::Counter* iter_counter = ctx.metrics() != nullptr
                                   ? &ctx.metrics()->counter("match.iterations")
                                   : nullptr;
  ctx.emit(obs::Event::run_start(ctx.run_id(), "match"));

  StochasticMatrix p = initial_.rows() == n ? initial_
                                            : StochasticMatrix::uniform(n, n);

  std::vector<graph::NodeId> samples(batch * n);
  std::vector<double> costs(batch);
  std::vector<std::size_t> order(batch);
  std::vector<double> counts(n * n);

  MatchResult result;
  result.best_cost = std::numeric_limits<double>::infinity();
  result.history.reserve(64);

  std::vector<double> prev_row_max(n, -1.0);
  std::size_t stable_iters = 0;
  double prev_gamma = std::numeric_limits<double>::quiet_NaN();
  std::size_t gamma_stall = 0;

  parallel::ForOptions for_opts;
  for_opts.pool = ctx.pool();
  if (!params_.parallel) {
    // Force the serial path by raising the cutoff above any batch size.
    for_opts.serial_cutoff = std::numeric_limits<std::size_t>::max();
  }

  for (std::size_t iter = 0; iter < params_.max_iterations; ++iter) {
    if (should_stop && should_stop()) {
      result.stop_reason = StopReason::kCancelled;
      break;
    }
    probe.start_iteration(iter);
    // --- Step 3 (Fig. 5): draw N mappings via GenPerm. -------------------
    const std::uint64_t iter_seed = rng.bits();
    if (!probe.armed()) {
      parallel::parallel_for_chunked(
          0, batch,
          [&](std::size_t lo, std::size_t hi, std::size_t /*chunk*/) {
            GenPermSampler sampler(n);
            for (std::size_t i = lo; i < hi; ++i) {
              rng::Rng local(sample_seed(iter_seed, i));
              const std::span<graph::NodeId> row(samples.data() + i * n, n);
              sampler.sample(p, local, row, params_.random_task_order, pins_);
              costs[i] = eval_->makespan(row);
            }
          },
          for_opts);
    } else {
      // Instrumented path: split the fused loop so draw and cost time
      // separately.  Each sample's RNG is seeded from (iter_seed, i)
      // alone and cost evaluation consumes no randomness, so the split
      // produces bit-identical samples and costs.
      parallel::parallel_for_chunked(
          0, batch,
          [&](std::size_t lo, std::size_t hi, std::size_t /*chunk*/) {
            GenPermSampler sampler(n);
            for (std::size_t i = lo; i < hi; ++i) {
              rng::Rng local(sample_seed(iter_seed, i));
              const std::span<graph::NodeId> row(samples.data() + i * n, n);
              sampler.sample(p, local, row, params_.random_task_order, pins_);
            }
          },
          for_opts);
      probe.split("draw");
      parallel::parallel_for_chunked(
          0, batch,
          [&](std::size_t lo, std::size_t hi, std::size_t /*chunk*/) {
            for (std::size_t i = lo; i < hi; ++i) {
              const std::span<const graph::NodeId> row(samples.data() + i * n,
                                                       n);
              costs[i] = eval_->makespan(row);
            }
          },
          for_opts);
      probe.split("cost");
    }

    // --- Steps 4–5: order costs, pick the elite threshold γ. -------------
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return costs[a] < costs[b];
    });
    probe.split("sort");

    const std::size_t rho_count = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::floor(params_.rho *
                                               static_cast<double>(batch))));
    double gamma;
    if (params_.paper_literal_elite) {
      // Literal Fig.-5 reading: sort descending, γ = s_{⌊ρN⌋}; with the
      // S ≤ γ indicator this keeps ~(1-ρ)N samples (ablation only).
      gamma = costs[order[batch - 1 - std::min(rho_count, batch - 1)]];
    } else {
      gamma = costs[order[rho_count - 1]];
    }

    const double iter_best = costs[order[0]];
    if (iter_best < result.best_cost) {
      result.best_cost = iter_best;
      const std::size_t bi = order[0];
      result.best_mapping = sim::Mapping(std::vector<graph::NodeId>(
          samples.begin() + static_cast<std::ptrdiff_t>(bi * n),
          samples.begin() + static_cast<std::ptrdiff_t>((bi + 1) * n)));
    }

    // --- Step 6: re-estimate P from the elite set (eq. 11). --------------
    std::fill(counts.begin(), counts.end(), 0.0);
    std::size_t elite = 0;
    for (std::size_t i = 0; i < batch; ++i) {
      if (costs[i] <= gamma) {
        ++elite;
        const graph::NodeId* row = samples.data() + i * n;
        for (std::size_t t = 0; t < n; ++t) counts[t * n + row[t]] += 1.0;
      }
    }
    // elite >= 1 by construction of gamma.
    for (double& c : counts) c /= static_cast<double>(elite);
    const StochasticMatrix q =
        StochasticMatrix::from_values(n, n, counts);
    counts.assign(n * n, 0.0);

    // --- Smoothing (eq. 13), optionally decayed over iterations. ---------
    double zeta_k = params_.zeta;
    if (params_.dynamic_smoothing_q > 0.0) {
      const double k = static_cast<double>(iter + 1);
      zeta_k = params_.zeta *
               (1.0 - std::pow(1.0 - 1.0 / k, params_.dynamic_smoothing_q));
      if (zeta_k <= 0.0) zeta_k = 1e-6;  // keep the blend well-defined
    }
    p.blend_from(q, zeta_k);
    probe.split("update");

    // One pass over the updated rows serves both the eq. (12) stability
    // check and the row-max-mean telemetry field.
    bool stable = true;
    double row_max_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double mu = p.row_max(i);
      row_max_sum += mu;
      if (std::abs(mu - prev_row_max[i]) > params_.stability_eps) {
        stable = false;
      }
      prev_row_max[i] = mu;
    }

    IterationStats stats;
    stats.iteration = iter;
    stats.gamma = gamma;
    stats.iter_best = iter_best;
    stats.best_so_far = result.best_cost;
    stats.mean_entropy = p.mean_entropy();
    stats.min_row_max = p.min_row_max();
    stats.row_max_mean = row_max_sum / static_cast<double>(n);
    stats.elite_count = elite;
    result.history.push_back(stats);
    if (trace_) trace_(stats, p);
    if (iter_counter != nullptr) iter_counter->add();
    ctx.emit(obs::Event::iteration_event(
        ctx.run_id(), "match", iter, gamma, iter_best, result.best_cost,
        gamma - iter_best, stats.row_max_mean, stats.mean_entropy, elite));

    result.iterations = iter + 1;

    if (params_.target_cost > 0.0 && result.best_cost <= params_.target_cost) {
      result.stop_reason = StopReason::kTargetReached;
      break;
    }

    // --- Step 8: stopping criteria. ---------------------------------------
    stable_iters = stable ? stable_iters + 1 : 0;

    if (stable_iters >= params_.stability_window) {
      result.stop_reason = StopReason::kRowMaxStable;
      break;
    }
    if (p.is_degenerate(params_.degeneracy_eps)) {
      result.stop_reason = StopReason::kDegenerate;
      break;
    }
    gamma_stall = (std::abs(gamma - prev_gamma) <= params_.stability_eps)
                      ? gamma_stall + 1
                      : 0;
    prev_gamma = gamma;
    if (gamma_stall >= params_.gamma_stall_window) {
      result.stop_reason = StopReason::kGammaStable;
      break;
    }
    result.stop_reason = StopReason::kMaxIterations;
  }

  if (result.iterations == 0 &&
      !std::isfinite(result.best_cost)) {
    // Cancelled before the first batch: evaluate one GenPerm draw so the
    // result always carries a valid permutation (service deadline
    // contract; see core/stop.hpp).
    GenPermSampler sampler(n);
    std::vector<graph::NodeId> row(n);
    rng::Rng local(rng.bits());
    sampler.sample(p, local, row, params_.random_task_order, pins_);
    result.best_cost = eval_->makespan(row);
    result.best_mapping = sim::Mapping(std::move(row));
    ctx.emit(obs::Event::fallback_draw(ctx.run_id(), "match"));
    if (ctx.metrics() != nullptr) {
      ctx.metrics()->counter("solver.fallback_draws").add();
    }
  }

  result.cancelled = result.stop_reason == StopReason::kCancelled;
  result.degenerate = result.stop_reason == StopReason::kDegenerate;
  result.final_matrix = p;
  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();
  ctx.emit(obs::Event::run_end(ctx.run_id(), "match", result.iterations,
                               result.best_cost, result.elapsed_seconds));
  return result;
}

}  // namespace match::core
