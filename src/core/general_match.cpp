#include "core/general_match.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>

#include "obs/scoped_timer.hpp"
#include "parallel/parallel_for.hpp"
#include "rng/splitmix64.hpp"

namespace match::core {

void GeneralMatchParams::validate() const {
  validate_common("GeneralMatchParams");
  if (stability_window == 0 || gamma_stall_window == 0) {
    throw std::invalid_argument("GeneralMatchParams: zero window");
  }
  if (stability_eps < 0.0 || degeneracy_eps <= 0.0) {
    throw std::invalid_argument("GeneralMatchParams: bad epsilon");
  }
  if (max_iterations == 0) {
    throw std::invalid_argument("GeneralMatchParams: max_iterations >= 1");
  }
}

GeneralMatchOptimizer::GeneralMatchOptimizer(const sim::CostEvaluator& eval,
                                             GeneralMatchParams params)
    : eval_(&eval),
      params_(params),
      tasks_(eval.num_tasks()),
      resources_(eval.num_resources()) {
  params_.validate();
  sample_size_ =
      params_.sample_size != 0 ? params_.sample_size : 2 * tasks_ * resources_;
  if (sample_size_ < 2) sample_size_ = 2;
}

namespace {

std::uint64_t sample_seed(std::uint64_t iter_seed, std::uint64_t index) {
  rng::SplitMix64 mixer(iter_seed ^ (index * 0x9e3779b97f4a7c15ULL));
  return mixer.next();
}

}  // namespace

MatchResult GeneralMatchOptimizer::run(const SolverContext& ctx) {
  const auto t_start = std::chrono::steady_clock::now();
  rng::Rng& rng = ctx.rng();
  obs::PhaseProbe probe(ctx.sink(), ctx.metrics(), "general", ctx.run_id());
  obs::Counter* iter_counter =
      ctx.metrics() != nullptr ? &ctx.metrics()->counter("general.iterations")
                               : nullptr;
  ctx.emit(obs::Event::run_start(ctx.run_id(), "general"));
  const std::size_t nt = tasks_;
  const std::size_t nr = resources_;
  const std::size_t batch = sample_size_;

  StochasticMatrix p = StochasticMatrix::uniform(nt, nr);

  // Samples live in SoA (transposed task-major) form: the naive sampler
  // scatters each draw in, the batch evaluator and the elite count read
  // task rows directly.
  sim::SampleBlock block(nt, batch);
  std::vector<double> costs(batch);
  std::vector<std::size_t> order(batch);
  std::vector<double> counts(nt * nr);
  std::vector<graph::NodeId> best_row(nt);
  std::vector<double> load;  // scalar recompute scratch (serial use only)
  std::vector<std::size_t> elite_idx;
  elite_idx.reserve(batch);

  sim::BatchEvaluator batch_eval(*eval_, params_.eval_backend);
  if (ctx.metrics() != nullptr) {
    ctx.metrics()
        ->counter(std::string("solver.backend.") + batch_eval.backend_name())
        .add();
  }

  MatchResult result;
  result.best_cost = std::numeric_limits<double>::infinity();

  std::vector<double> prev_row_max(nt, -1.0);
  std::size_t stable_iters = 0;
  double prev_gamma = std::numeric_limits<double>::quiet_NaN();
  std::size_t gamma_stall = 0;

  parallel::ForOptions for_opts;
  for_opts.pool = ctx.pool();
  if (!params_.parallel) {
    for_opts.serial_cutoff = std::numeric_limits<std::size_t>::max();
  }

  for (std::size_t iter = 0; iter < params_.max_iterations; ++iter) {
    if (ctx.stop_requested()) {
      result.stop_reason = StopReason::kCancelled;
      break;
    }
    probe.start_iteration(iter);
    const std::uint64_t iter_seed = rng.bits();
    // Naive independent-rows sampler: each task draws its resource from
    // its own row of P, no uniqueness constraint.  Draws are seeded from
    // (iter_seed, i) alone, so splitting the draw and cost passes keeps
    // the stream identical to the historical fused loop.
    parallel::parallel_for_chunked(
        0, batch,
        [&](std::size_t lo, std::size_t hi, std::size_t /*chunk*/) {
          std::vector<graph::NodeId> row(nt);
          for (std::size_t i = lo; i < hi; ++i) {
            rng::Rng local(sample_seed(iter_seed, i));
            for (std::size_t t = 0; t < nt; ++t) {
              row[t] = static_cast<graph::NodeId>(
                  local.weighted_pick(p.row(t), 1.0));
            }
            block.store_sample(i, row);
          }
        },
        for_opts);
    probe.split("draw");
    batch_eval.evaluate(block, costs, for_opts);
    probe.split("cost");

    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return costs[a] < costs[b];
    });
    const std::size_t rho_count = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::floor(params_.rho * static_cast<double>(batch))));
    const double gamma = costs[order[rho_count - 1]];

    if (costs[order[0]] < result.best_cost) {
      // Scalar recompute keeps best_cost == makespan(best_mapping)
      // bit-exact under every backend (see MatchOptimizer::run).
      block.load_sample(order[0], best_row);
      const double exact = eval_->makespan(best_row, load);
      if (exact < result.best_cost) {
        result.best_cost = exact;
        result.best_mapping = sim::Mapping(
            std::vector<graph::NodeId>(best_row.begin(), best_row.end()));
      }
    }

    // Task-major elite count straight from the SoA block (see
    // MatchOptimizer::run for why this needs no per-worker buffers).
    elite_idx.clear();
    for (std::size_t i = 0; i < batch; ++i) {
      if (costs[i] <= gamma) elite_idx.push_back(i);
    }
    const std::size_t elite = elite_idx.size();
    std::fill(counts.begin(), counts.end(), 0.0);
    for (std::size_t t = 0; t < nt; ++t) {
      const graph::NodeId* row = block.task_row(t);
      double* ct = counts.data() + t * nr;
      for (const std::size_t i : elite_idx) ct[row[i]] += 1.0;
    }
    for (double& c : counts) c /= static_cast<double>(elite);
    const StochasticMatrix q = StochasticMatrix::from_values(nt, nr, counts);
    p.blend_from(q, params_.zeta);
    probe.split("update");

    IterationStats stats;
    stats.iteration = iter;
    stats.gamma = gamma;
    stats.iter_best = costs[order[0]];
    stats.best_so_far = result.best_cost;
    stats.mean_entropy = p.mean_entropy();
    stats.min_row_max = p.min_row_max();
    stats.elite_count = elite;

    bool stable = true;
    double row_max_sum = 0.0;
    for (std::size_t t = 0; t < nt; ++t) {
      const double mu = p.row_max(t);
      row_max_sum += mu;
      if (std::abs(mu - prev_row_max[t]) > params_.stability_eps) stable = false;
      prev_row_max[t] = mu;
    }
    stats.row_max_mean = row_max_sum / static_cast<double>(nt);
    result.history.push_back(stats);
    if (trace_) trace_(stats, p);
    result.iterations = iter + 1;
    if (iter_counter != nullptr) iter_counter->add();
    ctx.emit(obs::Event::iteration_event(
        ctx.run_id(), "general", iter, gamma, stats.iter_best,
        result.best_cost, gamma - stats.iter_best, stats.row_max_mean,
        stats.mean_entropy, elite));
    if (params_.target_cost > 0.0 && result.best_cost <= params_.target_cost) {
      result.stop_reason = StopReason::kTargetReached;
      break;
    }
    stable_iters = stable ? stable_iters + 1 : 0;
    if (stable_iters >= params_.stability_window) {
      result.stop_reason = StopReason::kRowMaxStable;
      break;
    }
    if (p.is_degenerate(params_.degeneracy_eps)) {
      result.stop_reason = StopReason::kDegenerate;
      break;
    }
    gamma_stall = (std::abs(gamma - prev_gamma) <= params_.stability_eps)
                      ? gamma_stall + 1
                      : 0;
    prev_gamma = gamma;
    if (gamma_stall >= params_.gamma_stall_window) {
      result.stop_reason = StopReason::kGammaStable;
      break;
    }
    result.stop_reason = StopReason::kMaxIterations;
  }

  if (result.iterations == 0 && !std::isfinite(result.best_cost)) {
    // Cancelled before the first batch: evaluate one naive draw so the
    // result always carries a valid mapping.
    std::vector<graph::NodeId> row(nt);
    rng::Rng local(rng.bits());
    for (std::size_t t = 0; t < nt; ++t) {
      row[t] = static_cast<graph::NodeId>(local.weighted_pick(p.row(t), 1.0));
    }
    result.best_cost =
        eval_->makespan(std::span<const graph::NodeId>(row.data(), nt));
    result.best_mapping = sim::Mapping(std::move(row));
    ctx.emit(obs::Event::fallback_draw(ctx.run_id(), "general"));
    if (ctx.metrics() != nullptr) {
      ctx.metrics()->counter("solver.fallback_draws").add();
    }
  }

  result.cancelled = result.stop_reason == StopReason::kCancelled;
  result.degenerate = result.stop_reason == StopReason::kDegenerate;
  result.final_matrix = p;
  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();
  ctx.emit(obs::Event::run_end(ctx.run_id(), "general", result.iterations,
                               result.best_cost, result.elapsed_seconds));
  return result;
}

}  // namespace match::core
