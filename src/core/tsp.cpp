#include "core/tsp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace match::core {

TspProblem::TspProblem(std::size_t n, std::vector<double> distances)
    : n_(n), dist_(std::move(distances)), p_(StochasticMatrix::uniform(
                                              n > 1 ? n : 2, n > 1 ? n : 2)) {
  if (n < 3) throw std::invalid_argument("TspProblem: need >= 3 cities");
  if (dist_.size() != n * n) {
    throw std::invalid_argument("TspProblem: distance matrix size");
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && !(dist_[i * n + j] > 0.0)) {
        throw std::invalid_argument("TspProblem: distances must be positive");
      }
    }
  }
  p_ = StochasticMatrix::uniform(n, n);
}

TspProblem TspProblem::random_euclidean(std::size_t n, rng::Rng& rng) {
  std::vector<std::array<double, 2>> points(n);
  for (auto& pt : points) {
    pt = {rng.uniform(), rng.uniform()};
  }
  std::vector<double> dist(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double dx = points[i][0] - points[j][0];
      const double dy = points[i][1] - points[j][1];
      dist[i * n + j] = std::sqrt(dx * dx + dy * dy) + 1e-9;
    }
  }
  return TspProblem(n, std::move(dist));
}

TspProblem::Sample TspProblem::draw(rng::Rng& rng) const {
  Sample tour(n_);
  std::vector<graph::NodeId> free;
  free.reserve(n_ - 1);
  for (graph::NodeId c = 1; c < n_; ++c) free.push_back(c);

  tour[0] = 0;
  std::vector<double> weights;
  for (std::size_t step = 1; step < n_; ++step) {
    const auto row = p_.row(tour[step - 1]);
    weights.resize(free.size());
    double total = 0.0;
    for (std::size_t k = 0; k < free.size(); ++k) {
      weights[k] = row[free[k]];
      total += weights[k];
    }
    const std::size_t pick =
        total > 0.0 ? rng.weighted_pick(weights, total)
                    : static_cast<std::size_t>(rng.below(free.size()));
    tour[step] = free[pick];
    free[pick] = free.back();
    free.pop_back();
  }
  return tour;
}

double TspProblem::cost(const Sample& tour) const {
  double length = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    length += distance(tour[i], tour[(i + 1) % n_]);
  }
  return length;
}

void TspProblem::update(const std::vector<const Sample*>& elites,
                        double zeta) {
  if (elites.empty()) return;
  std::vector<double> counts(n_ * n_, 0.0);
  for (const Sample* tour : elites) {
    for (std::size_t i = 0; i < n_; ++i) {
      // Count both tour directions: the instance is symmetric, and the
      // symmetrized estimate halves the variance of the update.
      const graph::NodeId a = (*tour)[i];
      const graph::NodeId b = (*tour)[(i + 1) % n_];
      counts[a * n_ + b] += 1.0;
      counts[b * n_ + a] += 1.0;
    }
  }
  const double denom = 2.0 * static_cast<double>(elites.size());
  for (double& c : counts) c /= denom;
  p_.blend_from(StochasticMatrix::from_values(n_, n_, std::move(counts)),
                zeta);
}

bool TspProblem::degenerate(double eps) const {
  // A degenerate transition matrix has every row concentrated on at most
  // two successors (the two tour neighbors), i.e. row max >= 0.5 - eps.
  for (std::size_t i = 0; i < n_; ++i) {
    if (p_.row_max(i) < 0.5 - eps) return false;
  }
  return true;
}

TspProblem::Sample TspProblem::nearest_neighbor_tour() const {
  Sample tour(n_);
  std::vector<char> visited(n_, 0);
  tour[0] = 0;
  visited[0] = 1;
  for (std::size_t step = 1; step < n_; ++step) {
    const graph::NodeId here = tour[step - 1];
    double best = std::numeric_limits<double>::infinity();
    graph::NodeId next = 0;
    for (graph::NodeId c = 0; c < n_; ++c) {
      if (!visited[c] && distance(here, c) < best) {
        best = distance(here, c);
        next = c;
      }
    }
    tour[step] = next;
    visited[next] = 1;
  }
  return tour;
}

TspProblem::Sample TspProblem::two_opt(Sample tour) const {
  if (!is_valid_tour(tour)) {
    throw std::invalid_argument("two_opt: invalid tour");
  }
  bool improved = true;
  while (improved) {
    improved = false;
    for (std::size_t i = 0; i + 1 < n_; ++i) {
      for (std::size_t j = i + 2; j < n_; ++j) {
        if (i == 0 && j == n_ - 1) continue;  // same edge pair
        const graph::NodeId a = tour[i], b = tour[i + 1];
        const graph::NodeId c = tour[j], d = tour[(j + 1) % n_];
        const double delta = distance(a, c) + distance(b, d) -
                             distance(a, b) - distance(c, d);
        if (delta < -1e-12) {
          std::reverse(tour.begin() + static_cast<std::ptrdiff_t>(i + 1),
                       tour.begin() + static_cast<std::ptrdiff_t>(j + 1));
          improved = true;
        }
      }
    }
  }
  return tour;
}

double TspProblem::brute_force_optimum() const {
  if (n_ > 11) throw std::invalid_argument("brute_force_optimum: n > 11");
  Sample tour(n_);
  std::iota(tour.begin(), tour.end(), graph::NodeId{0});
  double best = std::numeric_limits<double>::infinity();
  // City 0 fixed first: (n-1)! tours.
  do {
    best = std::min(best, cost(tour));
  } while (std::next_permutation(tour.begin() + 1, tour.end()));
  return best;
}

bool TspProblem::is_valid_tour(const Sample& tour) const {
  if (tour.size() != n_ || tour[0] != 0) return false;
  std::vector<char> seen(n_, 0);
  for (const graph::NodeId c : tour) {
    if (c >= n_ || seen[c]) return false;
    seen[c] = 1;
  }
  return true;
}

}  // namespace match::core
