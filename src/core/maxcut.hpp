#pragma once

#include <vector>

#include "core/ce_driver.hpp"
#include "graph/graph.hpp"
#include "rng/rng.hpp"

namespace match::core {

/// CE adapter for the (weighted) max-cut problem — Rubinstein's original
/// showcase for CE on combinatorial optimization, included to demonstrate
/// that the library's generic driver covers the paper's §3 framework, not
/// just the mapping problem.
///
/// The pmf is a vector of independent Bernoulli parameters, one per node:
/// `p_i` is the probability node i lands on side 1.  Node 0 is pinned to
/// side 0 to quotient out the cut's mirror symmetry.  The driver
/// *minimizes*, so cost = −(cut weight).
class MaxCutProblem {
 public:
  using Sample = std::vector<char>;  ///< partition bits, size n

  explicit MaxCutProblem(const graph::Graph& g);

  Sample draw(rng::Rng& rng) const;
  double cost(const Sample& s) const;  ///< negative cut weight
  void update(const std::vector<const Sample*>& elites, double zeta);
  bool degenerate(double eps) const;

  /// Cut weight of a partition (the maximized quantity).
  double cut_weight(const Sample& s) const;

  const std::vector<double>& probabilities() const noexcept { return p_; }

  /// Exhaustive optimum for n <= 24 nodes (testing/benchmark reference).
  static double brute_force_max_cut(const graph::Graph& g);

 private:
  const graph::Graph* g_;
  std::vector<double> p_;
};

}  // namespace match::core
