#pragma once

// Warm-started re-mapping for dynamic platforms.
//
// Computational grids change while an application runs: a resource slows
// down (contention), a link degrades, a node is drained.  Re-running
// MaTCH from the uniform matrix throws away everything the previous run
// learned.  The re-mapper instead starts CE from an *anchored* matrix —
// a convex blend of the indicator of the incumbent mapping and the
// uniform matrix — so the search explores around the incumbent first and
// falls back to global search only as far as the elite samples demand.
// This is the natural CE analogue of the dynamic re-mapping schemes the
// paper cites ([18]).

#include "core/matchalgo.hpp"
#include "core/solver_context.hpp"
#include "rng/rng.hpp"
#include "sim/evaluator.hpp"
#include "sim/mapping.hpp"

namespace match::core {

struct RematchParams {
  /// Probability mass P_0 places on the incumbent assignment per row;
  /// the rest spreads uniformly.  0 = cold start, values near 1 make the
  /// first batches near-replays of the incumbent.
  double anchor = 0.6;

  /// CE parameters of the re-run.
  MatchParams base = {};

  void validate() const;
};

/// The anchored starting matrix: row t has `anchor + (1-anchor)/n` at the
/// incumbent's resource and `(1-anchor)/n` elsewhere.
StochasticMatrix anchored_matrix(const sim::Mapping& incumbent,
                                 std::size_t num_resources, double anchor);

/// Re-optimizes `incumbent` for (possibly changed) `eval`.  Returns the
/// better of the re-run's best and the incumbent itself, so re-mapping
/// never regresses.  The context's stop hook and telemetry flow through
/// to the underlying MaTCH run.
MatchResult rematch(const sim::CostEvaluator& eval,
                    const sim::Mapping& incumbent, const RematchParams& params,
                    const SolverContext& ctx);

}  // namespace match::core
