#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace match::core {

/// A row-stochastic matrix: `n` rows (tasks) × `n` columns (resources),
/// each row a probability distribution over resources.
///
/// This is the CE method's parameter object for the mapping problem
/// (the paper's `P = (p_ij)`).  MaTCH starts from the uniform matrix,
/// re-estimates it from elite samples each iteration (eq. 11), smooths it
/// (eq. 13) and stops when it degenerates — each row concentrating all
/// mass on a single resource (Fig. 3).
class StochasticMatrix {
 public:
  StochasticMatrix() = default;

  /// `rows × cols` matrix with every entry `1 / cols` (the paper's P_0).
  static StochasticMatrix uniform(std::size_t rows, std::size_t cols);

  /// Takes ownership of row-major `values`; every row must already sum to
  /// 1 within `kRowSumTolerance` (throws otherwise).
  static StochasticMatrix from_values(std::size_t rows, std::size_t cols,
                                      std::vector<double> values);

  /// Takes ownership of row-major `values` WITHOUT the O(rows·cols)
  /// stochasticity validation.  Strictly for internal hot paths whose
  /// construction already guarantees row sums of 1 — e.g. the eq. (11)
  /// re-estimate, which normalizes counts it just accumulated; debug
  /// builds still assert.  Misuse silently breaks sampling invariants,
  /// so public entry points must keep using `from_values`.
  static StochasticMatrix from_values_unchecked(std::size_t rows,
                                                std::size_t cols,
                                                std::vector<double> values);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double operator()(std::size_t i, std::size_t j) const {
    return values_[i * cols_ + j];
  }

  std::span<const double> row(std::size_t i) const {
    return {values_.data() + i * cols_, cols_};
  }
  std::span<double> row_mut(std::size_t i) {
    return {values_.data() + i * cols_, cols_};
  }

  std::span<const double> values() const noexcept { return values_; }

  /// Largest entry of row i (the paper's μ^i).
  double row_max(std::size_t i) const;

  /// Column index of the largest entry of row i.
  std::size_t row_argmax(std::size_t i) const;

  /// Shannon entropy of row i in bits; 0 when degenerate, log2(cols) when
  /// uniform.  Used by the convergence traces (Fig. 3 reproduction).
  double row_entropy(std::size_t i) const;

  /// Mean row entropy — a scalar summary of how far the matrix is from
  /// degenerate.
  double mean_entropy() const;

  /// Smallest row maximum; 1 - min_row_max() <= eps means every row has
  /// (nearly) collapsed.
  double min_row_max() const;

  /// True when every row's maximum is at least `1 - eps`.
  bool is_degenerate(double eps) const { return min_row_max() >= 1.0 - eps; }

  /// The mapping obtained by taking each row's argmax.  Well-defined for
  /// any matrix, meaningful once (nearly) degenerate.
  std::vector<std::size_t> argmax_assignment() const;

  /// True if every row sums to 1 within `kRowSumTolerance` and all
  /// entries are in [0, 1].
  bool is_row_stochastic() const;

  /// Convex blend (eq. 13): this = zeta * target + (1 - zeta) * this.
  void blend_from(const StochasticMatrix& target, double zeta);

  /// Mean per-row Kullback–Leibler divergence D(this || other) in bits —
  /// the "cross-entropy distance" of the method's name, usable as a
  /// convergence measure between successive parameter matrices.  Zero
  /// entries of `this` contribute 0; a positive entry of `this` over a
  /// zero entry of `other` yields +infinity.
  double kl_divergence(const StochasticMatrix& other) const;

  static constexpr double kRowSumTolerance = 1e-9;

 private:
  StochasticMatrix(std::size_t rows, std::size_t cols,
                   std::vector<double> values)
      : rows_(rows), cols_(cols), values_(std::move(values)) {}

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> values_;
};

}  // namespace match::core
