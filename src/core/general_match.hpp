#pragma once

// The paper's footnote made concrete: "a few simple modifications of the
// algorithm(s) will in effect take care of other cases" — the case being
// |V_t| != |V_r|, where a mapping is many-to-one instead of a
// permutation.  The CE machinery is unchanged (stochastic matrix over
// tasks x resources, elite-frequency update, smoothing); only the sampler
// differs: without the uniqueness constraint each task draws its resource
// independently from its own row, exactly the "naive" generator the paper
// describes before introducing GenPerm.

#include <cstdint>
#include <functional>
#include <vector>

#include "core/matchalgo.hpp"
#include "core/solver_context.hpp"
#include "core/stochastic_matrix.hpp"
#include "rng/rng.hpp"
#include "sim/evaluator.hpp"
#include "sim/mapping.hpp"

namespace match::core {

/// Parameters for the general (many-to-one) CE mapper.  Semantics match
/// `MatchParams`; the shared knobs live in the `core::CeCommonParams`
/// base (`sample_size` 0 → 2 · tasks · resources, the rectangular
/// analogue of the paper's 2n²).  The base's `sampler` field is accepted
/// but ignored: without the permutation constraint each task draws its
/// resource independently from its own row, so there is no GenPerm
/// backend to select.
struct GeneralMatchParams : CeCommonParams {
  std::size_t stability_window = 5;
  std::size_t gamma_stall_window = 10;
  double stability_eps = 1e-6;
  double degeneracy_eps = 1e-3;
  std::size_t max_iterations = 1000;

  void validate() const;
};

/// Cross-entropy mapping for instances with any task/resource counts.
///
/// Tasks may share resources; the evaluator's cost model already charges
/// co-located neighbors zero communication, so clustering heavy
/// communicators emerges naturally from the optimization.
class GeneralMatchOptimizer {
 public:
  using TraceFn =
      std::function<void(const IterationStats&, const StochasticMatrix&)>;

  explicit GeneralMatchOptimizer(const sim::CostEvaluator& eval,
                                 GeneralMatchParams params = {});

  void set_trace(TraceFn trace) { trace_ = std::move(trace); }

  std::size_t effective_sample_size() const noexcept { return sample_size_; }

  /// Runs the general mapper.  The stop hook is polled once per
  /// iteration; on cancellation the best-so-far mapping is reported
  /// (with a single naive fallback draw if no batch completed).
  MatchResult run(const SolverContext& ctx);

 private:
  const sim::CostEvaluator* eval_;
  GeneralMatchParams params_;
  std::size_t tasks_;
  std::size_t resources_;
  std::size_t sample_size_;
  TraceFn trace_;
};

}  // namespace match::core
