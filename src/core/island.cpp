#include "core/island.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "core/genperm.hpp"
#include "core/stochastic_matrix.hpp"
#include "obs/scoped_timer.hpp"
#include "parallel/parallel_for.hpp"
#include "rng/splitmix64.hpp"

namespace match::core {

void IslandParams::validate() const {
  if (islands == 0) throw std::invalid_argument("IslandParams: islands >= 1");
  if (epoch_iterations == 0) {
    throw std::invalid_argument("IslandParams: epoch_iterations >= 1");
  }
  if (migration < 0.0 || migration > 1.0) {
    throw std::invalid_argument("IslandParams: migration in [0, 1]");
  }
  if (max_epochs == 0 || stall_epochs == 0) {
    throw std::invalid_argument("IslandParams: zero epoch budget");
  }
  if (!(rho > 0.0 && rho < 1.0)) {
    throw std::invalid_argument("IslandParams: rho in (0, 1)");
  }
  if (!(zeta > 0.0 && zeta <= 1.0)) {
    throw std::invalid_argument("IslandParams: zeta in (0, 1]");
  }
}

IslandMatchOptimizer::IslandMatchOptimizer(const sim::CostEvaluator& eval,
                                           IslandParams params)
    : eval_(&eval), params_(params), n_(eval.num_tasks()) {
  params_.validate();
  if (eval.num_resources() != n_) {
    throw std::invalid_argument("IslandMatchOptimizer: needs |V_t| == |V_r|");
  }
  sample_size_ = params_.sample_size != 0
                     ? params_.sample_size
                     : std::max<std::size_t>(8, 2 * n_ * n_ / params_.islands);
}

namespace {

/// Per-island evolving state.
struct Island {
  StochasticMatrix p;
  sim::Mapping best_mapping;
  double best_cost = std::numeric_limits<double>::infinity();
  std::uint64_t seed = 0;
};

}  // namespace

IslandResult IslandMatchOptimizer::run(const SolverContext& ctx) {
  const auto t_start = std::chrono::steady_clock::now();
  rng::Rng& rng = ctx.rng();
  obs::PhaseProbe probe(ctx.sink(), ctx.metrics(), "island", ctx.run_id());
  obs::Counter* iter_counter =
      ctx.metrics() != nullptr ? &ctx.metrics()->counter("island.epochs")
                               : nullptr;
  ctx.emit(obs::Event::run_start(ctx.run_id(), "island"));
  const std::size_t n = n_;
  const std::size_t batch = sample_size_;
  const std::size_t k = params_.islands;

  std::vector<Island> islands(k);
  for (auto& island : islands) {
    island.p = StochasticMatrix::uniform(n, n);
    island.seed = rng.bits();
  }

  IslandResult result;
  result.best_cost = std::numeric_limits<double>::infinity();

  parallel::ForOptions for_opts;
  for_opts.pool = ctx.pool();
  for_opts.grain = 1;
  if (!params_.parallel) {
    for_opts.serial_cutoff = std::numeric_limits<std::size_t>::max();
  } else {
    for_opts.serial_cutoff = 0;
  }

  const std::size_t rho_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::floor(params_.rho * static_cast<double>(batch))));

  std::size_t stall = 0;
  for (std::size_t epoch = 0; epoch < params_.max_epochs; ++epoch) {
    if (ctx.stop_requested()) {
      result.cancelled = true;
      break;
    }
    probe.start_iteration(epoch);
    // --- Each island evolves privately for one epoch (parallel). -------
    parallel::parallel_for(
        0, k,
        [&](std::size_t idx) {
          Island& island = islands[idx];
          rng::SplitMix64 mixer(island.seed ^ (epoch * 0x9e3779b97f4a7c15ULL));
          rng::Rng local(mixer.next());

          GenPermSampler sampler(n);
          std::vector<graph::NodeId> samples(batch * n);
          std::vector<double> costs(batch);
          std::vector<std::size_t> order(batch);
          std::vector<double> counts(n * n);

          for (std::size_t it = 0; it < params_.epoch_iterations; ++it) {
            for (std::size_t i = 0; i < batch; ++i) {
              const std::span<graph::NodeId> row(samples.data() + i * n, n);
              sampler.sample(island.p, local, row);
              costs[i] = eval_->makespan(row);
            }
            std::iota(order.begin(), order.end(), std::size_t{0});
            std::sort(order.begin(), order.end(),
                      [&](std::size_t a, std::size_t b) {
                        return costs[a] < costs[b];
                      });
            const double gamma = costs[order[rho_count - 1]];
            if (costs[order[0]] < island.best_cost) {
              island.best_cost = costs[order[0]];
              const std::size_t bi = order[0];
              island.best_mapping = sim::Mapping(std::vector<graph::NodeId>(
                  samples.begin() + static_cast<std::ptrdiff_t>(bi * n),
                  samples.begin() + static_cast<std::ptrdiff_t>((bi + 1) * n)));
            }
            std::fill(counts.begin(), counts.end(), 0.0);
            std::size_t elite = 0;
            for (std::size_t i = 0; i < batch; ++i) {
              if (costs[i] <= gamma) {
                ++elite;
                const graph::NodeId* row = samples.data() + i * n;
                for (std::size_t t = 0; t < n; ++t) {
                  counts[t * n + row[t]] += 1.0;
                }
              }
            }
            for (double& c : counts) c /= static_cast<double>(elite);
            island.p.blend_from(StochasticMatrix::from_values(n, n, counts),
                                params_.zeta);
            counts.assign(n * n, 0.0);
          }
        },
        for_opts);
    probe.split("evolve");

    // --- Migration: everyone drifts toward the best island. -------------
    std::size_t best_island = 0;
    for (std::size_t i = 1; i < k; ++i) {
      if (islands[i].best_cost < islands[best_island].best_cost) {
        best_island = i;
      }
    }
    if (params_.migration > 0.0) {
      for (std::size_t i = 0; i < k; ++i) {
        if (i == best_island) continue;
        islands[i].p.blend_from(islands[best_island].p, params_.migration);
      }
    }

    const double epoch_best = islands[best_island].best_cost;
    if (epoch_best < result.best_cost - 1e-12) {
      result.best_cost = epoch_best;
      result.best_mapping = islands[best_island].best_mapping;
      stall = 0;
    } else {
      ++stall;
    }
    probe.split("migrate");
    result.history.push_back(result.best_cost);
    result.epochs = epoch + 1;
    if (iter_counter != nullptr) iter_counter->add();
    ctx.emit(obs::Event::iteration_event(
        ctx.run_id(), "island", epoch, 0.0, epoch_best, result.best_cost, 0.0,
        0.0, 0.0, k));
    if (stall >= params_.stall_epochs) break;
  }

  if (result.epochs == 0 && !std::isfinite(result.best_cost)) {
    // Cancelled before the first epoch: evaluate one draw from island 0
    // so the result always carries a valid permutation.
    GenPermSampler sampler(n);
    std::vector<graph::NodeId> row(n);
    rng::Rng local(rng.bits());
    sampler.sample(islands[0].p, local, row);
    result.best_cost = eval_->makespan(row);
    result.best_mapping = sim::Mapping(std::move(row));
    ctx.emit(obs::Event::fallback_draw(ctx.run_id(), "island"));
    if (ctx.metrics() != nullptr) {
      ctx.metrics()->counter("solver.fallback_draws").add();
    }
  }

  result.iterations = result.epochs;
  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();
  ctx.emit(obs::Event::run_end(ctx.run_id(), "island", result.epochs,
                               result.best_cost, result.elapsed_seconds));
  return result;
}

}  // namespace match::core
