#pragma once

// The library-wide cooperative-cancellation hook.
//
// Historically every solver declared its own copy of this typedef
// (`core::CeStopFn`, `core::MatchOptimizer::StopFn`,
// `baselines::GaOptimizer::StopFn`, `service::StopFn`); they were all the
// same `std::function<bool()>` with the same contract, so they now alias
// the single `match::StopFn` defined here.
//
// Contract: the hook is polled at iteration granularity (once per CE
// iteration / GA generation / island epoch / local-search restart).
// Returning true stops the run at the next iteration boundary, and the
// solver reports its best-so-far solution — always a valid complete
// sample, never a partial one.  When the hook fires before the first
// batch completes, solvers evaluate a single fallback draw so the
// contract holds (see docs/OBSERVABILITY.md on the `fallback_draw`
// event).

#include <functional>

namespace match {

using StopFn = std::function<bool()>;

}  // namespace match
