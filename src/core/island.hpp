#pragma once

// Island-model MaTCH: the paper's future-work direction ("extending
// MaTCH into a fully distributed implementation") realized as a
// coarse-grained parallel CE.  K islands each evolve their own stochastic
// matrix over private sample batches; after every epoch the islands
// migrate — each blends its matrix toward the currently best island's —
// so good structure propagates without centralizing the sampling.
// Islands run concurrently on the thread pool, which also makes this the
// library's answer to MaTCH's main cost (mapping time, paper Table 2).

#include <cstdint>
#include <vector>

#include "core/matchalgo.hpp"
#include "core/run_summary.hpp"
#include "core/solver_context.hpp"
#include "rng/rng.hpp"
#include "sim/evaluator.hpp"
#include "sim/mapping.hpp"

namespace match::core {

struct IslandParams {
  std::size_t islands = 4;
  /// CE iterations each island runs between migrations.
  std::size_t epoch_iterations = 5;
  /// Blend factor toward the best island's matrix at migration (0
  /// disables migration, turning the run into independent restarts).
  double migration = 0.25;
  std::size_t max_epochs = 200;
  /// Stop after this many epochs without global-best improvement.
  std::size_t stall_epochs = 4;
  /// Per-island sample batch; 0 → 2n² / islands (so the total sampling
  /// effort per epoch-iteration matches single-island MaTCH).
  std::size_t sample_size = 0;
  double rho = 0.05;
  double zeta = 0.3;
  bool parallel = true;

  void validate() const;
};

/// `best_cost`, `iterations`, and `cancelled` live in the `RunSummary`
/// base; `epochs` mirrors `iterations` under the island model's name.
struct IslandResult : RunSummary {
  sim::Mapping best_mapping;
  std::size_t epochs = 0;
  /// Global best after each epoch (monotone non-increasing).
  std::vector<double> history;
  double elapsed_seconds = 0.0;
};

class IslandMatchOptimizer {
 public:
  explicit IslandMatchOptimizer(const sim::CostEvaluator& eval,
                                IslandParams params = {});

  std::size_t per_island_samples() const noexcept { return sample_size_; }

  /// Runs the island model.  The stop hook is polled once per epoch
  /// (between migrations); on cancellation the global best so far is
  /// reported.  With telemetry attached, one iteration event per epoch
  /// carries the global best.
  IslandResult run(const SolverContext& ctx);

 private:
  const sim::CostEvaluator* eval_;
  IslandParams params_;
  std::size_t n_;
  std::size_t sample_size_;
};

}  // namespace match::core
