#include "core/stochastic_matrix.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace match::core {

StochasticMatrix StochasticMatrix::uniform(std::size_t rows, std::size_t cols) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("StochasticMatrix::uniform: empty");
  }
  std::vector<double> v(rows * cols, 1.0 / static_cast<double>(cols));
  return StochasticMatrix(rows, cols, std::move(v));
}

StochasticMatrix StochasticMatrix::from_values(std::size_t rows,
                                               std::size_t cols,
                                               std::vector<double> values) {
  if (values.size() != rows * cols) {
    throw std::invalid_argument("StochasticMatrix::from_values: size");
  }
  StochasticMatrix m(rows, cols, std::move(values));
  if (!m.is_row_stochastic()) {
    throw std::invalid_argument(
        "StochasticMatrix::from_values: rows must sum to 1");
  }
  return m;
}

StochasticMatrix StochasticMatrix::from_values_unchecked(
    std::size_t rows, std::size_t cols, std::vector<double> values) {
  if (values.size() != rows * cols) {
    throw std::invalid_argument("StochasticMatrix::from_values_unchecked: size");
  }
  StochasticMatrix m(rows, cols, std::move(values));
  assert(m.is_row_stochastic() &&
         "from_values_unchecked: caller must guarantee row-stochastic input");
  return m;
}

double StochasticMatrix::row_max(std::size_t i) const {
  const auto r = row(i);
  return *std::max_element(r.begin(), r.end());
}

std::size_t StochasticMatrix::row_argmax(std::size_t i) const {
  const auto r = row(i);
  return static_cast<std::size_t>(
      std::max_element(r.begin(), r.end()) - r.begin());
}

double StochasticMatrix::row_entropy(std::size_t i) const {
  double h = 0.0;
  for (double p : row(i)) {
    if (p > 0.0) h -= p * std::log2(p);
  }
  return h;
}

double StochasticMatrix::mean_entropy() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) sum += row_entropy(i);
  return sum / static_cast<double>(rows_);
}

double StochasticMatrix::min_row_max() const {
  double lo = 1.0;
  for (std::size_t i = 0; i < rows_; ++i) lo = std::min(lo, row_max(i));
  return lo;
}

std::vector<std::size_t> StochasticMatrix::argmax_assignment() const {
  std::vector<std::size_t> out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = row_argmax(i);
  return out;
}

bool StochasticMatrix::is_row_stochastic() const {
  for (std::size_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (double p : row(i)) {
      if (p < -kRowSumTolerance || p > 1.0 + kRowSumTolerance) return false;
      sum += p;
    }
    if (std::abs(sum - 1.0) > kRowSumTolerance) return false;
  }
  return true;
}

void StochasticMatrix::blend_from(const StochasticMatrix& target, double zeta) {
  if (target.rows_ != rows_ || target.cols_ != cols_) {
    throw std::invalid_argument("StochasticMatrix::blend_from: shape");
  }
  if (zeta < 0.0 || zeta > 1.0) {
    throw std::invalid_argument("StochasticMatrix::blend_from: zeta");
  }
  for (std::size_t k = 0; k < values_.size(); ++k) {
    values_[k] = zeta * target.values_[k] + (1.0 - zeta) * values_[k];
  }
}

double StochasticMatrix::kl_divergence(const StochasticMatrix& other) const {
  if (other.rows_ != rows_ || other.cols_ != cols_) {
    throw std::invalid_argument("StochasticMatrix::kl_divergence: shape");
  }
  double total = 0.0;
  for (std::size_t k = 0; k < values_.size(); ++k) {
    const double p = values_[k];
    if (p <= 0.0) continue;
    const double q = other.values_[k];
    if (q <= 0.0) return std::numeric_limits<double>::infinity();
    total += p * std::log2(p / q);
  }
  return total / static_cast<double>(rows_);
}

}  // namespace match::core
