#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/stochastic_matrix.hpp"
#include "graph/graph.hpp"
#include "rng/rng.hpp"

namespace match::core {

/// Which GenPerm draw backend a solver uses (see docs/ALGORITHMS.md §"GenPerm
/// sampling complexity").
enum class SamplerBackend {
  /// The legacy exact scan: each pick gathers the row restricted to the
  /// free resources and draws by inverse transform.  O(n²) per sample,
  /// bit-exact with the pre-alias library versions.
  kScan,
  /// Alias-table + rejection: per-row Walker/Vose alias tables are built
  /// once per iteration from the fixed P and shared read-only across the
  /// batch; each pick rejection-samples against the taken set and falls
  /// back to the exact scan when the free set is small or rejections
  /// exceed a cap.  Distributionally identical to kScan (renormalization
  /// over free resources), ~O(n log n) per sample.
  kAlias,
};

const char* to_string(SamplerBackend backend);

/// Walker/Vose alias tables for every row of a row-stochastic matrix:
/// O(1) draws from a row's *unconditional* distribution.
///
/// The tables depend only on P, so one build per CE iteration (O(n²)
/// total) is shared read-only by every sampler in the batch; `build`
/// reuses its storage, keeping steady-state iterations allocation-free.
class RowAliasTables {
 public:
  RowAliasTables() = default;

  /// Rebuilds the tables from `p` (any rows × cols shape).
  void build(const StochasticMatrix& p);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return rows_ == 0; }

  /// Draws a column from row i's distribution.  Consumes exactly one
  /// uniform: the integer part selects the bucket, the fractional part
  /// decides bucket-vs-alias.
  std::size_t sample(std::size_t i, rng::Rng& rng) const {
    const double u = rng.uniform() * static_cast<double>(cols_);
    std::size_t k = static_cast<std::size_t>(u);
    if (k >= cols_) k = cols_ - 1;  // guard fp round-up at u -> cols
    const Cell& c = cells_[i * cols_ + k];
    return (u - static_cast<double>(k)) < c.prob ? k : c.alias;
  }

 private:
  /// Acceptance threshold and alias target interleaved in one 16-byte
  /// cell: a rejection draw touches a random bucket, so keeping both
  /// fields on the same cache line matters on the hot path.
  struct Cell {
    double prob;
    graph::NodeId alias;
  };

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Cell> cells_;                   // row-major
  std::vector<graph::NodeId> small_, large_;  // build worklists (reused)
};

/// The paper's `GenPerm` sampler (Fig. 4): draws a *valid* permutation
/// mapping from the distribution induced by a stochastic matrix `P`.
///
/// Tasks are visited in a uniformly random order; each visited task draws
/// a resource from its row of `P` restricted (and renormalized) to the
/// resources not yet taken.  Visiting tasks in random order removes the
/// systematic bias a fixed order would give early tasks (they sample from
/// an unconstrained row).  A fixed visiting order is available for the
/// ablation study (`DESIGN.md` §5, item 5).
///
/// Two backends produce the same conditional distribution: the exact
/// scan (`sample` without tables) and alias-table rejection (`sample`
/// with a `RowAliasTables` built from the same `P`).  All scratch is
/// owned by the sampler and reused, so both paths are allocation-free
/// after the first draw.
class GenPermSampler {
 public:
  explicit GenPermSampler(std::size_t n);

  /// Sentinel in a pin vector: task is free to go anywhere.
  static constexpr graph::NodeId kNoPin = ~graph::NodeId{0};

  /// Floor of the alias→scan crossover: below this many free resources
  /// the exact scan always wins.  The effective cutoff is
  /// max(kSmallFreeCutoff, 2·√n): with f free resources the rejection
  /// loop expects ~n/f draws per pick while the scan costs O(f), so the
  /// crossover scales with √n rather than a constant.
  static constexpr std::size_t kSmallFreeCutoff = 8;

  /// Rejection attempts per pick before falling back to the exact scan
  /// (covers rows whose mass concentrates on already-taken resources).
  static constexpr std::size_t kMaxRejections = 16;

  /// Draws one permutation into `out` (size n): out[task] = resource.
  ///
  /// When a row's remaining probability mass underflows to zero (all its
  /// mass sat on already-taken resources), the draw falls back to uniform
  /// over the free resources — the natural completion, since GenPerm's
  /// conditional renormalization is undefined there.
  ///
  /// `pins` is either empty or size n; entry t != kNoPin forces task t
  /// onto that resource (and removes the resource from everyone else's
  /// draws).  Pinned resources must be distinct.
  ///
  /// This overload is the exact-scan backend (`SamplerBackend::kScan`);
  /// it consumes one uniform per pick and is bit-exact with the legacy
  /// two-pass scan (the pick is binary-searched over prefix sums stored
  /// during the single weight gather).
  void sample(const StochasticMatrix& p, rng::Rng& rng,
              std::span<graph::NodeId> out, bool random_task_order = true,
              std::span<const graph::NodeId> pins = {});

  /// Alias-backend overload (`SamplerBackend::kAlias`): `tables` must
  /// have been built from `p` (same object the caller keeps fixed for
  /// the whole batch).  Each pick rejection-samples the task's row until
  /// it hits a free resource, falling back to the exact renormalized
  /// scan after `kMaxRejections` misses or when fewer than
  /// `kSmallFreeCutoff` resources remain — so the conditional
  /// distribution is identical to the scan backend's, while the expected
  /// per-sample cost drops from O(n²) to ~O(n log n).  The RNG stream
  /// differs from the scan backend (rejections consume extra draws).
  void sample(const StochasticMatrix& p, const RowAliasTables& tables,
              rng::Rng& rng, std::span<graph::NodeId> out,
              bool random_task_order = true,
              std::span<const graph::NodeId> pins = {});

  std::size_t size() const noexcept { return n_; }

  /// Resets the task visiting order to identity — the state of a freshly
  /// constructed sampler.  With `random_task_order`, the Fisher–Yates
  /// shuffle permutes the *current* order in place, so consecutive draws
  /// chain their orders; callers that reuse one sampler where the legacy
  /// code constructed a fresh one (e.g. per worker chunk) call this at
  /// the old construction point to reproduce the exact same stream.
  void reset_order() noexcept {
    for (std::size_t i = 0; i < n_; ++i) order_[i] = i;
  }

 private:
  /// Shuffles (or resets) the task visiting order and rebuilds the free
  /// set from `pins`, writing pinned assignments straight into `out`.
  void begin_draw(rng::Rng& rng, std::span<graph::NodeId> out,
                  bool random_task_order, std::span<const graph::NodeId> pins,
                  bool track_positions);

  /// Exact renormalized pick over the current free set from row `row`:
  /// index into `free_`.  Consumes one uniform (or one bounded integer
  /// draw when the remaining mass is zero).
  std::size_t pick_from_free_scan(std::span<const double> row, rng::Rng& rng);

  std::size_t n_;
  std::size_t scan_cutoff_;  // max(kSmallFreeCutoff, 2·√n); see above
  // Scratch reused across draws to keep the hot path allocation-free.
  std::vector<std::size_t> order_;
  std::vector<graph::NodeId> free_;    // resources still available
  std::vector<double> prefix_;         // inclusive prefix sums of row|free
  std::vector<char> taken_;            // alias path: taken-resource bitmap
  std::vector<graph::NodeId> pos_;     // alias path: free_ index of resource
};

}  // namespace match::core
