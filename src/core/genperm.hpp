#pragma once

#include <span>
#include <vector>

#include "core/stochastic_matrix.hpp"
#include "graph/graph.hpp"
#include "rng/rng.hpp"

namespace match::core {

/// The paper's `GenPerm` sampler (Fig. 4): draws a *valid* permutation
/// mapping from the distribution induced by a stochastic matrix `P`.
///
/// Tasks are visited in a uniformly random order; each visited task draws
/// a resource from its row of `P` restricted (and renormalized) to the
/// resources not yet taken.  Visiting tasks in random order removes the
/// systematic bias a fixed order would give early tasks (they sample from
/// an unconstrained row).  A fixed visiting order is available for the
/// ablation study (`DESIGN.md` §5, item 5).
class GenPermSampler {
 public:
  explicit GenPermSampler(std::size_t n);

  /// Sentinel in a pin vector: task is free to go anywhere.
  static constexpr graph::NodeId kNoPin = ~graph::NodeId{0};

  /// Draws one permutation into `out` (size n): out[task] = resource.
  ///
  /// When a row's remaining probability mass underflows to zero (all its
  /// mass sat on already-taken resources), the draw falls back to uniform
  /// over the free resources — the natural completion, since GenPerm's
  /// conditional renormalization is undefined there.
  ///
  /// `pins` is either empty or size n; entry t != kNoPin forces task t
  /// onto that resource (and removes the resource from everyone else's
  /// draws).  Pinned resources must be distinct.
  void sample(const StochasticMatrix& p, rng::Rng& rng,
              std::span<graph::NodeId> out, bool random_task_order = true,
              std::span<const graph::NodeId> pins = {});

  std::size_t size() const noexcept { return n_; }

 private:
  std::size_t n_;
  // Scratch reused across draws to keep the hot path allocation-free.
  std::vector<std::size_t> order_;
  std::vector<graph::NodeId> free_;    // resources still available
  std::vector<double> weights_;        // P row restricted to free_
};

}  // namespace match::core
