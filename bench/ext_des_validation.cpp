// Extension bench: validating the paper's analytic cost model against
// the discrete-event execution simulator.
//
// Part 1: in the model's own regime (serialized communication) DES and
// eq. (2) must agree to machine precision — the cost model is exact.
// Part 2: under a rendezvous (coupled) network and partial comm/compute
// overlap, the additive model is only an approximation; we measure its
// rank correlation (Spearman) across random mappings, which is what
// matters for an optimizer that only *compares* mappings.
// Part 3: the payoff — a MaTCH-optimized mapping, chosen with the
// analytic model, still wins on the coupled simulator.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "core/matchalgo.hpp"
#include "io/table.hpp"
#include "sim/des.hpp"
#include "stats/descriptive.hpp"
#include "workload/paper_suite.hpp"

namespace {

/// Spearman rank correlation.
double spearman(const std::vector<double>& x, const std::vector<double>& y) {
  const std::size_t n = x.size();
  const auto ranks = [n](const std::vector<double>& v) {
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
    std::vector<double> r(n);
    for (std::size_t i = 0; i < n; ++i) r[idx[i]] = static_cast<double>(i);
    return r;
  };
  const auto rx = ranks(x), ry = ranks(y);
  double d2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) d2 += (rx[i] - ry[i]) * (rx[i] - ry[i]);
  const double dn = static_cast<double>(n);
  return 1.0 - 6.0 * d2 / (dn * (dn * dn - 1.0));
}

}  // namespace

int main(int argc, char** argv) {
  using match::io::Table;

  std::size_t n = 20;
  std::size_t mappings = 200;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      mappings = 50;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      mappings = 500;
    } else if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      n = std::strtoul(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--quick|--full] [--n N]\n", argv[0]);
      return 2;
    }
  }

  match::rng::Rng setup(606);
  match::workload::PaperParams params;
  params.n = n;
  const auto inst = match::workload::make_paper_instance(params, setup);
  const auto platform = inst.make_platform();
  const match::sim::CostEvaluator eval(inst.tig, platform);

  std::cout << "== Extension: cost-model validation against the "
               "discrete-event simulator (n = " << n << ") ==\n\n";

  // --- Part 1: exactness in the serialized regime. ----------------------
  match::rng::Rng rng(1);
  double max_rel_err = 0.0;
  for (int i = 0; i < 50; ++i) {
    const auto m = match::sim::Mapping::random_permutation(n, rng);
    const double analytic = eval.makespan(m);
    const double simulated =
        match::sim::simulate_execution(eval, m, {}).total_time;
    max_rel_err =
        std::max(max_rel_err, std::abs(simulated - analytic) / analytic);
  }
  std::printf("part 1: serialized-comm DES vs eq.(2): max relative error "
              "%.2e over 50 mappings\n\n", max_rel_err);

  // --- Part 2: rank correlation under richer network models. -----------
  std::vector<match::sim::Mapping> sample;
  std::vector<double> analytic;
  for (std::size_t i = 0; i < mappings; ++i) {
    sample.push_back(match::sim::Mapping::random_permutation(n, rng));
    analytic.push_back(eval.makespan(sample.back()));
  }

  Table table({"network model", "Spearman rank corr. vs eq.(2)",
               "mean simulated / analytic"});
  struct Scenario {
    const char* name;
    match::sim::DesParams params;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back({"serialized (paper model)", {}});
  {
    match::sim::DesParams p;
    p.comm_overlap = 0.5;
    scenarios.push_back({"50% comm/compute overlap", p});
  }
  {
    match::sim::DesParams p;
    p.comm_model = match::sim::DesParams::CommModel::kCoupled;
    scenarios.push_back({"coupled (rendezvous) transfers", p});
  }

  double worst_corr = 1.0;
  for (const auto& scenario : scenarios) {
    std::vector<double> simulated;
    double ratio = 0.0;
    for (std::size_t i = 0; i < mappings; ++i) {
      const double t =
          match::sim::simulate_execution(eval, sample[i], scenario.params)
              .total_time;
      simulated.push_back(t);
      ratio += t / analytic[i];
    }
    const double corr = spearman(analytic, simulated);
    worst_corr = std::min(worst_corr, corr);
    table.add_row({scenario.name, Table::num(corr, 4),
                   Table::num(ratio / static_cast<double>(mappings), 4)});
  }
  table.print(std::cout);

  // --- Part 3: optimized mapping still wins on the coupled simulator. ---
  match::core::MatchOptimizer matcher(eval);
  match::rng::Rng match_rng(2);
  const auto optimized = matcher.run(match::SolverContext(match_rng));
  match::sim::DesParams coupled;
  coupled.comm_model = match::sim::DesParams::CommModel::kCoupled;
  const double opt_sim =
      match::sim::simulate_execution(eval, optimized.best_mapping, coupled)
          .total_time;
  std::vector<double> random_sim;
  for (std::size_t i = 0; i < std::min<std::size_t>(mappings, 100); ++i) {
    random_sim.push_back(
        match::sim::simulate_execution(eval, sample[i], coupled).total_time);
  }
  const double random_mean = match::stats::mean(random_sim);
  std::printf("\npart 3: coupled-network time of MaTCH mapping %.0f vs "
              "random mean %.0f (%.2fx better)\n",
              opt_sim, random_mean, random_mean / opt_sim);

  const bool exact_ok = max_rel_err < 1e-9;
  const bool rank_ok = worst_corr > 0.8;
  const bool opt_ok = opt_sim < random_mean;
  std::cout << "\nshape-check: DES exactly reproduces the cost model in its "
               "regime: "
            << (exact_ok ? "yes" : "NO") << "\n";
  std::cout << "shape-check: rank correlation stays > 0.8 under richer "
               "networks: "
            << (rank_ok ? "yes" : "NO") << "\n";
  std::cout << "shape-check: analytically-optimized mapping wins on the "
               "coupled simulator: "
            << (opt_ok ? "yes" : "NO") << "\n";
  return (exact_ok && rank_ok && opt_ok) ? 0 : 1;
}
