// Ablation study over MaTCH's design choices (DESIGN.md §5):
//   1. focus parameter rho,
//   2. smoothing factor zeta (1.0 = the coarse, unsmoothed update),
//   3. sample-size schedule N,
//   4. elite rule: standard best-rho-fraction vs the literal Fig.-5 text,
//   5. GenPerm task visit order: random vs fixed.
//
// Each configuration runs on the same instances with the same seeds, so
// differences are attributable to the parameter alone.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "core/matchalgo.hpp"
#include "io/table.hpp"
#include "stats/descriptive.hpp"
#include "workload/paper_suite.hpp"

namespace {

struct Config {
  std::string name;
  match::core::MatchParams params;
};

struct Outcome {
  double mean_et = 0.0;
  double mean_iters = 0.0;
  double mean_seconds = 0.0;
};

Outcome run_config(const Config& config,
                   const std::vector<match::workload::Instance>& instances,
                   std::size_t runs) {
  Outcome out;
  std::size_t count = 0;
  for (const auto& inst : instances) {
    const auto platform = inst.make_platform();
    const match::sim::CostEvaluator eval(inst.tig, platform);
    for (std::size_t run = 0; run < runs; ++run) {
      match::core::MatchOptimizer opt(eval, config.params);
      match::rng::Rng rng(7000 + run);
      const auto r = opt.run(match::SolverContext(rng));
      out.mean_et += r.best_cost;
      out.mean_iters += static_cast<double>(r.iterations);
      out.mean_seconds += r.elapsed_seconds;
      ++count;
    }
  }
  out.mean_et /= static_cast<double>(count);
  out.mean_iters /= static_cast<double>(count);
  out.mean_seconds /= static_cast<double>(count);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using match::io::Table;

  std::size_t n = 20;
  std::size_t num_instances = 3;
  std::size_t runs = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      num_instances = 1;
      runs = 1;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      num_instances = 5;
      runs = 5;
    } else if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      n = std::strtoul(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--quick|--full] [--n N]\n", argv[0]);
      return 2;
    }
  }

  match::rng::Rng setup(4242);
  match::workload::PaperParams params;
  params.n = n;
  std::vector<match::workload::Instance> instances;
  for (std::size_t i = 0; i < num_instances; ++i) {
    instances.push_back(match::workload::make_paper_instance(params, setup));
  }

  std::vector<Config> configs;
  const auto base = match::core::MatchParams{};

  for (double rho : {0.01, 0.05, 0.1}) {
    auto p = base;
    p.rho = rho;
    configs.push_back({"rho=" + Table::num(rho, 3), p});
  }
  for (double zeta : {0.1, 0.3, 0.7, 1.0}) {
    auto p = base;
    p.zeta = zeta;
    configs.push_back({"zeta=" + Table::num(zeta, 3) +
                           (zeta == 1.0 ? " (coarse)" : ""),
                       p});
  }
  {
    auto p = base;
    p.sample_size = n * n;
    configs.push_back({"N=n^2", p});
    p.sample_size = 0;  // 2 n^2
    configs.push_back({"N=2n^2 (paper)", p});
    p.sample_size = 4 * n * n;
    configs.push_back({"N=4n^2", p});
  }
  {
    auto p = base;
    p.random_task_order = false;
    configs.push_back({"GenPerm fixed task order", p});
  }
  for (double q : {5.0, 10.0}) {
    auto p = base;
    p.dynamic_smoothing_q = q;
    configs.push_back({"dynamic smoothing q=" + Table::num(q, 3), p});
  }
  {
    auto p = base;
    p.paper_literal_elite = true;
    p.max_iterations = 100;
    configs.push_back({"literal Fig.-5 elite rule", p});
  }

  std::cout << "== Ablation: MaTCH design choices (n = " << n << ", "
            << num_instances << " instances x " << runs << " runs) ==\n\n";
  Table table({"configuration", "mean ET", "mean iterations", "mean MT (s)"});
  double paper_et = 0.0, literal_et = 0.0;
  for (const auto& config : configs) {
    std::fprintf(stderr, "  running %s ...\n", config.name.c_str());
    const Outcome out = run_config(config, instances, runs);
    table.add_row({config.name, Table::num(out.mean_et, 6),
                   Table::num(out.mean_iters, 4),
                   Table::num(out.mean_seconds, 3)});
    if (config.name == "N=2n^2 (paper)") paper_et = out.mean_et;
    if (config.name == "literal Fig.-5 elite rule") literal_et = out.mean_et;
  }
  table.print(std::cout);

  std::cout << "\nshape-check: standard elite rule beats the literal "
               "reading: "
            << (paper_et <= literal_et ? "yes" : "NO") << " (ET "
            << Table::num(paper_et, 6) << " vs " << Table::num(literal_et, 6)
            << ")\n";
  return paper_et <= literal_et ? 0 : 1;
}
