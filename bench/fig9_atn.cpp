// Reproduces Figure 9: application turnaround time ATN = ET + MT for
// FastMap-GA and MaTCH over |V| = 10..50.
//
// The paper adds ET (abstract units) and MT (seconds) as-is and argues
// that, despite MaTCH's larger MT, its far smaller ET dominates the sum.
// We print the paper-faithful sum and a unit-consistent variant where one
// abstract ET unit is worth `--unit-seconds S` wall-clock seconds
// (default 1, matching the paper's implicit convention).

#include <cstdio>
#include <cstring>
#include <iostream>

#include "io/ascii_chart.hpp"
#include "io/table.hpp"
#include "sweep.hpp"

int main(int argc, char** argv) {
  using match::io::Table;

  // Peel off --unit-seconds before handing the rest to the sweep parser.
  double unit_seconds = 1.0;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--unit-seconds") == 0 && i + 1 < argc) {
      unit_seconds = std::strtod(argv[++i], nullptr);
    } else {
      rest.push_back(argv[i]);
    }
  }
  const auto protocol = match::bench::SweepProtocol::from_args(
      static_cast<int>(rest.size()), rest.data());

  std::fprintf(stderr, "fig9: ATN sweep\n");
  const auto rows = match::bench::run_sweep(protocol);

  std::cout << "== Figure 9: Application Turnaround time (ATN = ET + MT) "
               "for FastMap-GA and MaTCH ==\n\n";
  Table table({"|Vr|=|Vt|", "ATN_GA", "ATN_MaTCH", "ATN_GA/ATN_MaTCH"});
  std::vector<std::string> labels;
  std::vector<double> ga_series, match_series;
  bool match_wins = true;
  for (const auto& row : rows) {
    const double atn_ga = row.et_ga * unit_seconds + row.mt_ga;
    const double atn_match = row.et_match * unit_seconds + row.mt_match;
    table.add_row({std::to_string(row.n), Table::num(atn_ga, 6),
                   Table::num(atn_match, 6),
                   Table::num(atn_ga / atn_match, 4)});
    labels.push_back(std::to_string(row.n));
    ga_series.push_back(atn_ga);
    match_series.push_back(atn_match);
    match_wins &= atn_match <= atn_ga * 1.03;
  }
  table.print(std::cout);

  match::io::AsciiChart chart("ATN vs number of resources", labels);
  chart.set_log_y(true);
  chart.add_series({"FastMap-GA", ga_series, 'g'});
  chart.add_series({"MaTCH", match_series, 'm'});
  chart.print(std::cout);

  std::cout << "shape-check: MaTCH ATN lower or tied (<=3%) at every size: "
            << (match_wins ? "yes" : "NO") << "\n";
  return match_wins ? 0 : 1;
}
