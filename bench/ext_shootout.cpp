// Extension bench: every mapping heuristic in the library on the same
// paper-style instances — the summary table a practitioner would want
// before picking one.  Reports mean ET, mean mapping time, and the gap
// to the best heuristic per size.
//
// Second act: the DAG shootout.  CE-over-priorities (core/dag_ce.hpp)
// against HEFT, topological list scheduling, and random priority search
// at CE's exact evaluation budget, across all three DAG generator
// families.  Every schedule is run through the feasibility checker, and
// the results land in BENCH_dag.json (obs/bench_report.hpp) next to the
// perf trajectory artifacts.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <limits>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "baselines/clustering.hpp"
#include "baselines/ga.hpp"
#include "baselines/heft.hpp"
#include "baselines/list_heuristics.hpp"
#include "baselines/local_search.hpp"
#include "core/dag_ce.hpp"
#include "core/island.hpp"
#include "core/matchalgo.hpp"
#include "io/table.hpp"
#include "obs/bench_report.hpp"
#include "sim/schedule_eval.hpp"
#include "workload/dag_suite.hpp"
#include "workload/paper_suite.hpp"

namespace {

struct Entry {
  double et = 0.0;
  double seconds = 0.0;
};

/// Per-family accumulator of the DAG shootout.
struct DagEntry {
  double makespan = 0.0;
  double seconds = 0.0;
  double evaluations = 0.0;  ///< list-scheduler invocations
};

}  // namespace

int main(int argc, char** argv) {
  using match::io::Table;

  std::vector<std::size_t> sizes = {20, 30};
  std::size_t runs = 2;
  std::size_t dag_tasks = 30;
  std::size_t dag_ce_iterations = 120;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      sizes = {15};
      runs = 1;
      dag_tasks = 20;
      dag_ce_iterations = 40;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      sizes = {20, 30, 40};
      runs = 3;
      dag_tasks = 40;
      dag_ce_iterations = 200;
    } else {
      std::fprintf(stderr, "usage: %s [--quick|--full]\n", argv[0]);
      return 2;
    }
  }

  const std::vector<std::string> names = {
      "MaTCH (CE)",       "island MaTCH",  "FastMap-GA", "min-min",
      "max-min",          "sufferage",     "greedy",     "cluster+refine",
      "hill climbing",    "sim annealing", "random(10k)"};

  bool match_near_best_everywhere = true;
  for (const std::size_t n : sizes) {
    std::map<std::string, Entry> entries;
    for (std::size_t run = 0; run < runs; ++run) {
      match::rng::Rng setup(1000 + 17 * n + run);
      match::workload::PaperParams params;
      params.n = n;
      const auto inst = match::workload::make_paper_instance(params, setup);
      const auto plat = inst.make_platform();
      const match::sim::CostEvaluator eval(inst.tig, plat);

      const auto record = [&](const std::string& name, double et,
                              double secs) {
        entries[name].et += et;
        entries[name].seconds += secs;
      };

      {
        match::rng::Rng r(run + 1);
        const auto res = match::core::MatchOptimizer(eval).run(match::SolverContext(r));
        record(names[0], res.best_cost, res.elapsed_seconds);
      }
      {
        match::rng::Rng r(run + 1);
        const auto res = match::core::IslandMatchOptimizer(eval).run(match::SolverContext(r));
        record(names[1], res.best_cost, res.elapsed_seconds);
      }
      {
        match::baselines::GaParams gp;  // paper default
        match::rng::Rng r(run + 1);
        const auto res = match::baselines::GaOptimizer(eval, gp).run(match::SolverContext(r));
        record(names[2], res.best_cost, res.elapsed_seconds);
      }
      {
        using match::baselines::ListRule;
        const auto mm =
            match::baselines::list_schedule(eval, ListRule::kMinMin);
        record(names[3], mm.best_cost, mm.elapsed_seconds);
        const auto xm =
            match::baselines::list_schedule(eval, ListRule::kMaxMin);
        record(names[4], xm.best_cost, xm.elapsed_seconds);
        const auto sf =
            match::baselines::list_schedule(eval, ListRule::kSufferage);
        record(names[5], sf.best_cost, sf.elapsed_seconds);
      }
      {
        const auto res = match::baselines::greedy_constructive(eval);
        record(names[6], res.best_cost, res.elapsed_seconds);
      }
      {
        match::rng::Rng r(run + 1);
        const auto res = match::baselines::cluster_map_refine(eval, {}, r);
        record(names[7], res.best_cost, res.elapsed_seconds);
      }
      {
        match::rng::Rng r(run + 1);
        const auto res = match::baselines::hill_climb(eval, 30000, match::SolverContext(r));
        record(names[8], res.best_cost, res.elapsed_seconds);
      }
      {
        match::rng::Rng r(run + 1);
        match::baselines::SaParams sp;
        sp.steps = 30000;
        const auto res = match::baselines::simulated_annealing(eval, sp, match::SolverContext(r));
        record(names[9], res.best_cost, res.elapsed_seconds);
      }
      {
        match::rng::Rng r(run + 1);
        const auto res = match::baselines::random_search(eval, 10000, match::SolverContext(r));
        record(names[10], res.best_cost, res.elapsed_seconds);
      }
      std::fprintf(stderr, "  n=%zu run=%zu done\n", n, run);
    }

    double best_et = std::numeric_limits<double>::infinity();
    for (const auto& [name, e] : entries) {
      best_et = std::min(best_et, e.et);
    }

    std::cout << "== Heuristic shootout, n = " << n << " (" << runs
              << " instances, §5.2 family) ==\n\n";
    Table table({"heuristic", "mean ET", "vs best", "mean MT (s)"});
    for (const std::string& name : names) {
      const Entry& e = entries[name];
      table.add_row({name, Table::num(e.et / runs, 6),
                     Table::num(e.et / best_et, 4),
                     Table::num(e.seconds / runs, 3)});
    }
    table.print(std::cout);
    std::cout << "\n";

    match_near_best_everywhere &= entries[names[0]].et <= best_et * 1.10;
  }

  // ---- DAG shootout: CE-over-priorities vs HEFT-class baselines --------
  //
  // All four contenders run through the SAME insertion-based list
  // scheduler (`ScheduleEvaluator::schedule_priorities`), so makespan
  // differences are attributable to the priority order alone.  The
  // random-search arm replays CE's exact evaluation count, making the
  // "equal evaluation budget" comparison explicit.
  const std::vector<match::workload::DagFamily> families = {
      match::workload::DagFamily::kLayered,
      match::workload::DagFamily::kForkJoin,
      match::workload::DagFamily::kSeriesParallel};
  const std::vector<std::string> dag_names = {"HEFT", "topo list", "CE (dag)",
                                              "random(=CE)"};

  match::bench::BenchReport report;
  report.name = "dag";
  report.git_sha = match::bench::current_git_sha();
  report.config["tasks"] = std::to_string(dag_tasks);
  report.config["resources"] = "8";
  report.config["runs"] = std::to_string(runs);
  report.config["ce_max_iterations"] = std::to_string(dag_ce_iterations);

  bool all_feasible = true;
  std::size_t ce_win_families = 0;

  for (std::size_t fi = 0; fi < families.size(); ++fi) {
    const auto family = families[fi];
    const char* family_name = match::workload::dag_family_name(family);
    std::map<std::string, DagEntry> entries;

    for (std::size_t run = 0; run < runs; ++run) {
      match::rng::Rng setup(9000 + 131 * fi + run);
      match::workload::DagSuiteParams params;
      params.tasks = dag_tasks;
      const auto inst =
          match::workload::make_dag_instance(family, params, setup);
      const auto plat = inst.make_platform();
      const match::sim::ScheduleEvaluator eval(inst.dag, plat);
      const std::size_t n = eval.num_tasks();

      const auto check = [&](const std::string& who,
                             const match::sim::Schedule& schedule) {
        std::string why;
        if (!match::sim::schedule_feasible(inst.dag, plat, schedule, &why)) {
          std::fprintf(stderr, "INFEASIBLE schedule: %s / %s: %s\n",
                       family_name, who.c_str(), why.c_str());
          all_feasible = false;
        }
      };
      const auto record = [&](const std::string& name, double makespan,
                              double secs, double evals) {
        entries[name].makespan += makespan;
        entries[name].seconds += secs;
        entries[name].evaluations += evals;
      };

      {
        const auto res = match::baselines::heft_schedule(eval);
        check(dag_names[0], res.schedule);
        record(dag_names[0], res.best_cost, res.elapsed_seconds, 1.0);
      }
      {
        const auto res = match::baselines::topo_list_schedule(eval);
        check(dag_names[1], res.schedule);
        record(dag_names[1], res.best_cost, res.elapsed_seconds, 1.0);
      }
      std::size_t ce_evaluations = 0;
      {
        match::core::DagCeParams cp;
        cp.max_iterations = dag_ce_iterations;
        match::rng::Rng r(run + 1);
        const auto res =
            match::core::solve_dag_ce(eval, cp, match::SolverContext(r));
        check(dag_names[2], res.schedule);
        record(dag_names[2], res.best_cost, res.elapsed_seconds,
               static_cast<double>(res.evaluations));
        ce_evaluations = res.evaluations;
      }
      {
        // Random priority search at CE's exact budget: the control that
        // shows whether CE's matrix is learning anything.
        match::rng::Rng r(run + 101);
        std::vector<match::graph::NodeId> perm(n);
        std::iota(perm.begin(), perm.end(), match::graph::NodeId{0});
        match::sim::ScheduleEvaluator::Scratch scratch;
        match::sim::Schedule best_schedule;
        double best = std::numeric_limits<double>::infinity();
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t e = 0; e < ce_evaluations; ++e) {
          r.shuffle(perm);
          match::sim::Schedule schedule;
          const double ms = eval.schedule_priorities(perm, scratch, &schedule);
          if (ms < best) {
            best = ms;
            best_schedule = std::move(schedule);
          }
        }
        const double secs =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();
        check(dag_names[3], best_schedule);
        record(dag_names[3], best, secs,
               static_cast<double>(ce_evaluations));
      }
      std::fprintf(stderr, "  dag family=%s run=%zu done\n", family_name, run);
    }

    const double heft_mean = entries[dag_names[0]].makespan / runs;
    const double ce_mean = entries[dag_names[2]].makespan / runs;
    if (ce_mean <= heft_mean) ++ce_win_families;

    std::cout << "== DAG shootout, family = " << family_name << " (n = "
              << dag_tasks << ", " << runs << " instances) ==\n\n";
    Table table({"scheduler", "mean makespan", "vs HEFT", "mean MT (s)",
                 "mean evals"});
    for (const std::string& name : dag_names) {
      const DagEntry& e = entries[name];
      table.add_row({name, Table::num(e.makespan / runs, 6),
                     Table::num((e.makespan / runs) / heft_mean, 4),
                     Table::num(e.seconds / runs, 3),
                     Table::num(e.evaluations / runs, 1)});
      match::bench::BenchCase bench_case;
      bench_case.name = std::string(family_name) + "/" + name;
      bench_case.wall_seconds = e.seconds / runs;
      bench_case.metrics["makespan"] = e.makespan / runs;
      bench_case.metrics["vs_heft"] = (e.makespan / runs) / heft_mean;
      bench_case.metrics["evaluations"] = e.evaluations / runs;
      report.cases.push_back(std::move(bench_case));
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  const std::string report_path = report.write();
  std::cout << "wrote " << report_path << "\n";

  const bool ce_competitive = ce_win_families >= 1;
  std::cout << "shape-check: MaTCH within 10% of the best heuristic at "
               "every size: "
            << (match_near_best_everywhere ? "yes" : "NO") << "\n";
  std::cout << "shape-check: every DAG schedule precedence-feasible: "
            << (all_feasible ? "yes" : "NO") << "\n";
  std::cout << "shape-check: CE matches or beats HEFT on >= 1 family ("
            << ce_win_families << "/" << families.size()
            << "): " << (ce_competitive ? "yes" : "NO") << "\n";
  return (match_near_best_everywhere && all_feasible && ce_competitive) ? 0
                                                                        : 1;
}
