// Extension bench: every mapping heuristic in the library on the same
// paper-style instances — the summary table a practitioner would want
// before picking one.  Reports mean ET, mean mapping time, and the gap
// to the best heuristic per size.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <vector>

#include "baselines/clustering.hpp"
#include "baselines/ga.hpp"
#include "baselines/list_heuristics.hpp"
#include "baselines/local_search.hpp"
#include "core/island.hpp"
#include "core/matchalgo.hpp"
#include "io/table.hpp"
#include "workload/paper_suite.hpp"

namespace {

struct Entry {
  double et = 0.0;
  double seconds = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using match::io::Table;

  std::vector<std::size_t> sizes = {20, 30};
  std::size_t runs = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      sizes = {15};
      runs = 1;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      sizes = {20, 30, 40};
      runs = 3;
    } else {
      std::fprintf(stderr, "usage: %s [--quick|--full]\n", argv[0]);
      return 2;
    }
  }

  const std::vector<std::string> names = {
      "MaTCH (CE)",       "island MaTCH",  "FastMap-GA", "min-min",
      "max-min",          "sufferage",     "greedy",     "cluster+refine",
      "hill climbing",    "sim annealing", "random(10k)"};

  bool match_near_best_everywhere = true;
  for (const std::size_t n : sizes) {
    std::map<std::string, Entry> entries;
    for (std::size_t run = 0; run < runs; ++run) {
      match::rng::Rng setup(1000 + 17 * n + run);
      match::workload::PaperParams params;
      params.n = n;
      const auto inst = match::workload::make_paper_instance(params, setup);
      const auto plat = inst.make_platform();
      const match::sim::CostEvaluator eval(inst.tig, plat);

      const auto record = [&](const std::string& name, double et,
                              double secs) {
        entries[name].et += et;
        entries[name].seconds += secs;
      };

      {
        match::rng::Rng r(run + 1);
        const auto res = match::core::MatchOptimizer(eval).run(match::SolverContext(r));
        record(names[0], res.best_cost, res.elapsed_seconds);
      }
      {
        match::rng::Rng r(run + 1);
        const auto res = match::core::IslandMatchOptimizer(eval).run(match::SolverContext(r));
        record(names[1], res.best_cost, res.elapsed_seconds);
      }
      {
        match::baselines::GaParams gp;  // paper default
        match::rng::Rng r(run + 1);
        const auto res = match::baselines::GaOptimizer(eval, gp).run(match::SolverContext(r));
        record(names[2], res.best_cost, res.elapsed_seconds);
      }
      {
        using match::baselines::ListRule;
        const auto mm =
            match::baselines::list_schedule(eval, ListRule::kMinMin);
        record(names[3], mm.best_cost, mm.elapsed_seconds);
        const auto xm =
            match::baselines::list_schedule(eval, ListRule::kMaxMin);
        record(names[4], xm.best_cost, xm.elapsed_seconds);
        const auto sf =
            match::baselines::list_schedule(eval, ListRule::kSufferage);
        record(names[5], sf.best_cost, sf.elapsed_seconds);
      }
      {
        const auto res = match::baselines::greedy_constructive(eval);
        record(names[6], res.best_cost, res.elapsed_seconds);
      }
      {
        match::rng::Rng r(run + 1);
        const auto res = match::baselines::cluster_map_refine(eval, {}, r);
        record(names[7], res.best_cost, res.elapsed_seconds);
      }
      {
        match::rng::Rng r(run + 1);
        const auto res = match::baselines::hill_climb(eval, 30000, match::SolverContext(r));
        record(names[8], res.best_cost, res.elapsed_seconds);
      }
      {
        match::rng::Rng r(run + 1);
        match::baselines::SaParams sp;
        sp.steps = 30000;
        const auto res = match::baselines::simulated_annealing(eval, sp, match::SolverContext(r));
        record(names[9], res.best_cost, res.elapsed_seconds);
      }
      {
        match::rng::Rng r(run + 1);
        const auto res = match::baselines::random_search(eval, 10000, match::SolverContext(r));
        record(names[10], res.best_cost, res.elapsed_seconds);
      }
      std::fprintf(stderr, "  n=%zu run=%zu done\n", n, run);
    }

    double best_et = std::numeric_limits<double>::infinity();
    for (const auto& [name, e] : entries) {
      best_et = std::min(best_et, e.et);
    }

    std::cout << "== Heuristic shootout, n = " << n << " (" << runs
              << " instances, §5.2 family) ==\n\n";
    Table table({"heuristic", "mean ET", "vs best", "mean MT (s)"});
    for (const std::string& name : names) {
      const Entry& e = entries[name];
      table.add_row({name, Table::num(e.et / runs, 6),
                     Table::num(e.et / best_et, 4),
                     Table::num(e.seconds / runs, 3)});
    }
    table.print(std::cout);
    std::cout << "\n";

    match_near_best_everywhere &= entries[names[0]].et <= best_et * 1.10;
  }

  std::cout << "shape-check: MaTCH within 10% of the best heuristic at "
               "every size: "
            << (match_near_best_everywhere ? "yes" : "NO") << "\n";
  return match_near_best_everywhere ? 0 : 1;
}
