// Reproduces Figure 3: evolution of the stochastic matrix in a sample run
// with |V_r| = |V_t| = 10, from the uniform matrix to a (near-)degenerate
// one.  Prints ASCII heatmaps of P at a few milestones plus the per-
// iteration entropy/degeneracy trace.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <vector>

#include "core/matchalgo.hpp"
#include "io/table.hpp"
#include "workload/paper_suite.hpp"

namespace {

/// Renders a probability as a density glyph, '.' (≈0) through '#' (≈1).
char glyph(double p) {
  static const char* kScale = ".:-=+*%#";
  int idx = static_cast<int>(p * 8.0);
  if (idx < 0) idx = 0;
  if (idx > 7) idx = 7;
  return kScale[idx];
}

void print_matrix(const match::core::StochasticMatrix& p) {
  std::cout << "      resources 0.." << p.cols() - 1
            << "   ('.'=0 ... '#'=1)\n";
  for (std::size_t i = 0; i < p.rows(); ++i) {
    std::printf("  t%-2zu ", i);
    for (std::size_t j = 0; j < p.cols(); ++j) {
      std::putchar(glyph(p(i, j)));
    }
    std::printf("   row max %.3f @ r%zu\n", p.row_max(i), p.row_argmax(i));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 10;
  std::uint64_t seed = 7;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      n = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--quick") == 0 ||
               std::strcmp(argv[i], "--full") == 0) {
      // single fast run either way
    } else {
      std::fprintf(stderr, "usage: %s [--n N] [--seed S]\n", argv[0]);
      return 2;
    }
  }

  match::rng::Rng setup(100 + seed);
  match::workload::PaperParams params;
  params.n = n;
  const auto instance = match::workload::make_paper_instance(params, setup);
  const auto platform = instance.make_platform();
  const match::sim::CostEvaluator eval(instance.tig, platform);

  // Snapshot P at milestone iterations; unknown total, so keep all
  // snapshots at exponential spacing plus the final one.
  std::map<std::size_t, match::core::StochasticMatrix> snapshots;
  match::core::MatchOptimizer matcher(eval);
  matcher.set_trace([&](const match::core::IterationStats& stats,
                        const match::core::StochasticMatrix& p) {
    const std::size_t it = stats.iteration;
    if (it == 0 || it == 2 || it == 5 || it == 10 || it % 20 == 0) {
      snapshots.emplace(it, p);
    }
  });

  match::rng::Rng rng(seed);
  const auto result = matcher.run(match::SolverContext(rng));
  snapshots.emplace(result.iterations - 1, result.final_matrix);

  std::cout << "== Figure 3: evolution of the stochastic matrix (n = " << n
            << ") ==\n";
  std::cout << "initial P0: every entry = 1/" << n << " (uniform)\n\n";
  for (const auto& [iter, p] : snapshots) {
    std::printf("-- after iteration %zu   (mean row entropy %.3f bits, min "
                "row max %.3f) --\n",
                iter, p.mean_entropy(), p.min_row_max());
    print_matrix(p);
    std::cout << "\n";
  }

  std::cout << "== convergence trace ==\n";
  match::io::Table trace({"iter", "gamma", "best so far", "mean entropy",
                          "min row max", "elite"});
  for (const auto& h : result.history) {
    if (h.iteration % 5 != 0 && h.iteration + 1 != result.iterations) continue;
    trace.add_row({std::to_string(h.iteration),
                   match::io::Table::num(h.gamma, 6),
                   match::io::Table::num(h.best_so_far, 6),
                   match::io::Table::num(h.mean_entropy, 4),
                   match::io::Table::num(h.min_row_max, 4),
                   std::to_string(h.elite_count)});
  }
  trace.print(std::cout);

  std::cout << "\nstopped after " << result.iterations << " iterations ("
            << match::core::to_string(result.stop_reason)
            << "), best ET = " << result.best_cost << "\n";

  // Shape: the matrix must sharpen substantially from uniform.
  const double initial_entropy = std::log2(static_cast<double>(n));
  const double final_entropy = result.final_matrix.mean_entropy();
  const bool sharpened = final_entropy < 0.5 * initial_entropy;
  std::cout << "shape-check: entropy fell from " << initial_entropy << " to "
            << final_entropy << " bits: " << (sharpened ? "yes" : "NO")
            << "\n";
  return sharpened ? 0 : 1;
}
