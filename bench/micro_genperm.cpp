// Microbenchmark for the CE hot path: GenPerm draw throughput (exact
// scan vs alias+rejection) and end-to-end MatchOptimizer::run with both
// backends at fixed iteration counts.  Writes BENCH_perf.json so CI
// accumulates a perf trajectory next to the observability reports.
//
//   --quick   smaller sizes / fewer repetitions (CI default)
//   --full    adds n = 256 to the draw sweep and more e2e iterations
//
// The headline metric is `speedup_alias_vs_scan` on the e2e cases
// (n = 128..256): wall-clock of a fixed-work run (early stopping
// disabled) with the legacy scan backend divided by the same run with
// the alias backend.  The gap widens with n — the scan draw is O(n²)
// per sample while alias+rejection is ~O(n log n) — so the largest size
// carries the headline number.  Exit status is 0 iff every run
// completed; the speedup is reported, not gated, so slow shared CI
// machines cannot flake the job.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "obs/bench_report.hpp"
#include "core/genperm.hpp"
#include "core/matchalgo.hpp"
#include "core/stochastic_matrix.hpp"
#include "graph/generators.hpp"
#include "io/table.hpp"
#include "parallel/parallel_for.hpp"
#include "rng/rng.hpp"
#include "sim/batch_eval.hpp"
#include "sim/evaluator.hpp"
#include "workload/paper_suite.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// A moderately skewed matrix: what P looks like mid-run, after a few CE
// updates have concentrated mass (uniform P flatters the scan backend,
// degenerate P flatters alias; this sits between).
match::core::StochasticMatrix mid_run_matrix(std::size_t n) {
  std::vector<double> v(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t d = (j + n - i % n) % n;
      v[i * n + j] = 1.0 / static_cast<double>(1 + d * d);
      sum += v[i * n + j];
    }
    for (std::size_t j = 0; j < n; ++j) v[i * n + j] /= sum;
  }
  return match::core::StochasticMatrix::from_values(n, n, std::move(v));
}

struct DrawResult {
  double wall = 0.0;
  double draws_per_sec = 0.0;
};

DrawResult time_draws(std::size_t n, std::size_t reps,
                      match::core::SamplerBackend backend) {
  const auto p = mid_run_matrix(n);
  match::core::RowAliasTables tables;
  if (backend == match::core::SamplerBackend::kAlias) tables.build(p);
  match::core::GenPermSampler sampler(n);
  match::rng::Rng rng(7);
  std::vector<match::graph::NodeId> out(n);

  // Warm the timed path (scratch buffers, alias cells, caches) before
  // the clock starts; a handful of draws also lets the core clock ramp.
  for (std::size_t r = 0; r < 8; ++r) {
    if (backend == match::core::SamplerBackend::kAlias) {
      sampler.sample(p, tables, rng, out);
    } else {
      sampler.sample(p, rng, out);
    }
  }
  const auto t0 = Clock::now();
  for (std::size_t r = 0; r < reps; ++r) {
    if (backend == match::core::SamplerBackend::kAlias) {
      sampler.sample(p, tables, rng, out);
    } else {
      sampler.sample(p, rng, out);
    }
  }
  DrawResult res;
  res.wall = seconds_since(t0);
  res.draws_per_sec = static_cast<double>(reps) / std::max(res.wall, 1e-12);
  return res;
}

// Frozen copy of the pre-PR GenPermSampler::sample inner loop (see git
// history at the PR base): two passes per pick — gather the row over the
// free resources into `weights`, then a subtraction scan inside
// rng.weighted_pick.  Kept here verbatim so the bench can time the
// pre-PR hot path even as the library implementation moves on.
void legacy_sample(const match::core::StochasticMatrix& p,
                   match::rng::Rng& rng, std::vector<std::size_t>& order,
                   std::vector<match::graph::NodeId>& free_v,
                   std::vector<double>& weights,
                   std::span<match::graph::NodeId> out) {
  const std::size_t n = p.rows();
  rng.shuffle(std::span<std::size_t>(order));
  free_v.clear();
  for (std::size_t j = 0; j < n; ++j) {
    free_v.push_back(static_cast<match::graph::NodeId>(j));
  }
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t task = order[step];
    const auto row = p.row(task);
    weights.resize(free_v.size());
    double total = 0.0;
    for (std::size_t k = 0; k < free_v.size(); ++k) {
      weights[k] = row[free_v[k]];
      total += weights[k];
    }
    std::size_t pick;
    if (total > 0.0) {
      pick = rng.weighted_pick(weights, total);
    } else {
      pick = static_cast<std::size_t>(rng.below(free_v.size()));
    }
    out[task] = free_v[pick];
    free_v[pick] = free_v.back();
    free_v.pop_back();
  }
}

// Frozen copy of the pre-PR makespan kernel: per-task CSR walk with a
// load buffer allocated per call.  Kept verbatim (like legacy_sample
// above) so the pre-PR reference stays fixed — the library kernel now
// streams the undirected edge list when the comm matrix is symmetric,
// so timing it here would understate the pre-PR cost.
double legacy_makespan(const match::sim::CostEvaluator& eval,
                       std::span<const match::graph::NodeId> assignment) {
  const match::sim::Platform& plat = eval.platform();
  const match::graph::Graph& tg = eval.tig().graph();
  const std::size_t nr = plat.num_resources();
  std::vector<double> load(nr, 0.0);
  const double* node_w = tg.node_weights().data();
  const match::graph::NodeId* assigned = assignment.data();
  for (match::graph::NodeId t = 0; t < assignment.size(); ++t) {
    const match::graph::NodeId s = assigned[t];
    const double* crow = plat.comm_row(s);
    double comm = 0.0;
    for (const match::graph::Neighbor& nb : tg.neighbors(t)) {
      comm += nb.weight * crow[assigned[nb.id]];
    }
    load[s] += node_w[t] * plat.processing_cost(s) + comm;
  }
  double best = 0.0;
  for (std::size_t s = 0; s < nr; ++s) best = std::max(best, load[s]);
  return best;
}

// Per-sample hot path (draw + makespan), mirroring the pre-PR inner
// loop exactly: fresh sampler state per 64-sample chunk (the batch
// grain — the pre-PR code constructed a GenPermSampler in every chunk
// lambda), the legacy two-pass scan draw above, and the legacy
// allocating makespan kernel.  The "new" variant is what MatchOptimizer::run
// does today: one pooled sampler, alias-table draw, caller-provided
// makespan scratch.  This is the cleanest reproducible stand-in for the
// pre-PR end-to-end cost: the phases outside it (elite cut, eq. 11
// update) are shared and small.
double time_hotpath(const match::sim::CostEvaluator& eval,
                    const match::core::StochasticMatrix& p,
                    std::size_t samples, bool prepr) {
  const std::size_t n = p.rows();
  match::core::RowAliasTables tables;
  match::core::GenPermSampler pooled(n);
  if (!prepr) tables.build(p);
  std::vector<match::graph::NodeId> out(n);
  std::vector<double> load;
  std::vector<std::size_t> order;
  std::vector<match::graph::NodeId> free_v;
  std::vector<double> weights;
  match::rng::Rng rng(7);
  double sink = 0.0;
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < samples; ++i) {
    if (prepr) {
      if (i % 64 == 0) {
        // Fresh per-chunk sampler state, as the pre-PR ctor built it.
        order.assign(n, 0);
        for (std::size_t j = 0; j < n; ++j) order[j] = j;
        free_v = std::vector<match::graph::NodeId>();
        free_v.reserve(n);
        weights = std::vector<double>();
        weights.reserve(n);
      }
      legacy_sample(p, rng, order, free_v, weights, out);
      sink += legacy_makespan(eval, std::span<const match::graph::NodeId>(out));
    } else {
      if (i % 64 == 0) pooled.reset_order();
      pooled.sample(p, tables, rng, out);
      sink += eval.makespan(std::span<const match::graph::NodeId>(out), load);
    }
  }
  const double wall = seconds_since(t0);
  if (sink < 0.0) std::abort();  // keep the sums observable
  return wall;
}

// One timed window of SoA batch evaluation: repeated
// BatchEvaluator::evaluate over a fixed SampleBlock, parallelism forced
// off so samples/s IS samples/s/core.  The caller interleaves windows
// across backends (same drift-cancellation idea as the e2e section) and
// keeps the best rate per backend.
double batch_window_rate(match::sim::BatchEvaluator& be,
                         const match::sim::SampleBlock& block,
                         std::span<double> out, double window_seconds) {
  match::parallel::ForOptions serial;
  serial.serial_cutoff = std::numeric_limits<std::size_t>::max();
  be.evaluate(block, out, serial);  // warm scratch + caches
  std::size_t reps = 0;
  double wall = 0.0;
  const auto t0 = Clock::now();
  do {
    be.evaluate(block, out, serial);
    ++reps;
    wall = seconds_since(t0);
  } while (wall < window_seconds);
  return static_cast<double>(reps * block.size()) / std::max(wall, 1e-12);
}

struct E2eResult {
  double wall = 0.0;
  double best_cost = 0.0;
  std::size_t iterations = 0;
};

E2eResult time_end_to_end(const match::sim::CostEvaluator& eval,
                          std::size_t iterations,
                          match::core::SamplerBackend backend) {
  match::core::MatchParams params;
  params.sampler = backend;
  // Fixed work: run exactly `iterations` batches with every early stop
  // effectively disabled, so both backends do identical numbers of
  // draws and evaluations and wall-clock is comparable.
  params.max_iterations = iterations;
  params.stability_window = 1000000;
  params.gamma_stall_window = 1000000;
  params.degeneracy_eps = 1e-12;

  match::core::MatchOptimizer opt(eval, params);
  match::rng::Rng rng(42);
  const auto t0 = Clock::now();
  const auto r = opt.run(match::SolverContext(rng));
  E2eResult res;
  res.wall = seconds_since(t0);
  res.best_cost = r.best_cost;
  res.iterations = r.iterations;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  using match::core::SamplerBackend;
  using match::io::Table;

  bool full = false, quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") full = true;
    if (arg == "--quick") quick = true;
  }
  std::vector<std::size_t> draw_sizes = {32, 64, 128};
  if (full) draw_sizes.push_back(256);
  const std::size_t draw_reps = quick ? 200 : 500;
  std::vector<std::size_t> e2e_sizes = {128, 192, 256};
  // Keep at least 3 iterations: the first batch samples the uniform P —
  // the rejection sampler's worst case (~n·ln n draws per sample) — while
  // every later batch samples a concentrated P that mostly accepts on the
  // first draw.  Real runs do ~25 iterations, so a 1-2 iteration timing
  // would overweight the untypical uniform batch.
  const std::size_t e2e_iters = full ? 5 : 3;
  const std::size_t e2e_trials = full ? 3 : 2;

  match::bench::BenchReport report;
  report.name = "perf";
  report.git_sha = match::bench::current_git_sha();
  report.config["mode"] = full ? "full" : (quick ? "quick" : "default");
  report.config["draw_reps"] = std::to_string(draw_reps);
  report.config["e2e_iterations"] = std::to_string(e2e_iters);
  report.config["e2e_trials"] = std::to_string(e2e_trials);

  // SoA batch-evaluation backends: one-core samples/s, scalar reference
  // vs the widest SIMD tier the host resolves (kAuto).  Clustered TIG
  // onto a 64-resource geometric platform — the data-parallel service
  // shape, rectangular so the comm gathers dominate like they do in a
  // real batch.  The headline is `speedup_vs_scalar` at n = 256.
  std::cout << "\n== SoA batch evaluation, one core (" << "nr=64, 2n samples"
            << ") ==\n\n";
  const double batch_window = quick ? 0.3 : 0.6;
  Table batch({"n", "scalar samples/s", "simd samples/s", "simd backend",
               "speedup_vs_scalar"});
  for (const std::size_t n : e2e_sizes) {
    std::fprintf(stderr, "micro_genperm: batch n=%zu\n", n);
    const std::size_t nr = 64;
    const std::size_t count = 2 * n;
    match::rng::Rng setup(42);
    const match::graph::Tig tig(match::graph::make_clustered(
        n, 3, 0.7, 0.2, {1, 10}, {50, 100}, setup));
    const match::sim::Platform platform(
        match::graph::ResourceGraph(
            match::graph::make_geometric(nr, 0.5, {1, 5}, 15.0, setup)),
        match::sim::CommCostPolicy::kShortestPath);
    const match::sim::CostEvaluator eval(tig, platform);

    match::sim::SampleBlock block(n, count);
    std::vector<match::graph::NodeId> row(n);
    for (std::size_t i = 0; i < count; ++i) {
      for (std::size_t t = 0; t < n; ++t) {
        row[t] = static_cast<match::graph::NodeId>(setup.below(nr));
      }
      block.store_sample(i, row);
    }

    match::sim::BatchEvaluator scalar_be(eval, match::sim::EvalBackend::kScalar);
    match::sim::BatchEvaluator simd_be(eval);  // kAuto → widest compiled tier
    const bool has_simd =
        simd_be.backend() != match::sim::EvalBackend::kScalar;
    std::vector<double> out(count);

    // Consecutive best-of-trials per backend, scalar first.  Unlike the
    // e2e section (scalar code on both sides, where interleaving cancels
    // drift), alternating here would force an AVX-512 frequency-license
    // transition at every window boundary: each SIMD window would pay the
    // transition stall and each scalar window would ride the recovered
    // turbo clock, biasing the ratio against SIMD.  Running each
    // backend's windows back-to-back lets the clock reach that backend's
    // steady license level, which is what a real batch workload sees.
    double scalar_rate = 0.0, simd_rate = 0.0;
    for (int trial = 0; trial < 3; ++trial) {
      scalar_rate = std::max(
          scalar_rate, batch_window_rate(scalar_be, block, out, batch_window));
    }
    for (int trial = 0; has_simd && trial < 3; ++trial) {
      simd_rate = std::max(
          simd_rate, batch_window_rate(simd_be, block, out, batch_window));
    }
    match::bench::BenchCase bs;
    bs.name = "batch/scalar/n=" + std::to_string(n);
    bs.metrics["samples_per_sec"] = scalar_rate;
    bs.metrics["samples_per_sec_per_core"] = scalar_rate;
    report.cases.push_back(bs);

    double speedup = 0.0;
    if (has_simd) {
      speedup = simd_rate / std::max(scalar_rate, 1e-12);
      match::bench::BenchCase bv;
      bv.name = std::string("batch/") + simd_be.backend_name() +
                "/n=" + std::to_string(n);
      bv.metrics["samples_per_sec"] = simd_rate;
      bv.metrics["samples_per_sec_per_core"] = simd_rate;
      bv.metrics["speedup_vs_scalar"] = speedup;
      report.cases.push_back(bv);
    }
    batch.add_row({std::to_string(n), Table::num(scalar_rate, 1),
                   has_simd ? Table::num(simd_rate, 1) : "-",
                   has_simd ? simd_be.backend_name() : "none",
                   has_simd ? Table::num(speedup, 2) : "-"});
    if (n == e2e_sizes.back()) {
      report.config["batch_backend_best"] =
          has_simd ? simd_be.backend_name() : "scalar";
    }
  }
  batch.print(std::cout);

  std::cout << "== GenPerm draw throughput (mid-run P) ==\n\n";
  Table draws({"n", "scan draws/s", "alias draws/s", "alias speedup"});
  for (const std::size_t n : draw_sizes) {
    std::fprintf(stderr, "micro_genperm: draws n=%zu\n", n);
    const DrawResult scan = time_draws(n, draw_reps, SamplerBackend::kScan);
    const DrawResult alias = time_draws(n, draw_reps, SamplerBackend::kAlias);
    const double speedup = scan.wall / std::max(alias.wall, 1e-12);
    draws.add_row({std::to_string(n), Table::num(scan.draws_per_sec, 1),
                   Table::num(alias.draws_per_sec, 1),
                   Table::num(speedup, 2)});

    match::bench::BenchCase cs;
    cs.name = "draw/scan/n=" + std::to_string(n);
    cs.wall_seconds = scan.wall;
    cs.metrics["draws_per_sec"] = scan.draws_per_sec;
    report.cases.push_back(cs);
    match::bench::BenchCase ca;
    ca.name = "draw/alias/n=" + std::to_string(n);
    ca.wall_seconds = alias.wall;
    ca.metrics["draws_per_sec"] = alias.draws_per_sec;
    ca.metrics["speedup_vs_scan"] = speedup;
    report.cases.push_back(ca);
  }
  draws.print(std::cout);

  std::cout << "\n== Per-sample hot path: pre-PR reference (fresh "
               "sampler/chunk, scan draw,\n   allocating makespan) vs "
               "pooled alias draw + scratch makespan ==\n\n";
  Table hot({"n", "pre-PR us/sample", "alias us/sample",
             "speedup_alias_vs_prepr"});
  for (const std::size_t n : e2e_sizes) {
    std::fprintf(stderr, "micro_genperm: hotpath n=%zu\n", n);
    match::rng::Rng setup(123);
    match::workload::PaperParams wp;
    wp.n = n;
    const auto inst = match::workload::make_paper_instance(wp, setup);
    const auto platform = inst.make_platform();
    const match::sim::CostEvaluator eval(inst.tig, platform);
    const auto p = mid_run_matrix(n);

    const std::size_t samples = quick ? 256 : 512;
    double prepr = 0.0, alias_hp = 0.0;
    for (std::size_t trial = 0; trial < 3; ++trial) {
      const double wp_wall = time_hotpath(eval, p, samples, /*prepr=*/true);
      const double wa_wall = time_hotpath(eval, p, samples, /*prepr=*/false);
      if (trial == 0 || wp_wall < prepr) prepr = wp_wall;
      if (trial == 0 || wa_wall < alias_hp) alias_hp = wa_wall;
    }
    const double speedup = prepr / std::max(alias_hp, 1e-12);
    const double scale = 1e6 / static_cast<double>(samples);
    hot.add_row({std::to_string(n), Table::num(prepr * scale, 2),
                 Table::num(alias_hp * scale, 2), Table::num(speedup, 2)});

    match::bench::BenchCase hp;
    hp.name = "hotpath/prepr/n=" + std::to_string(n);
    hp.wall_seconds = prepr;
    hp.metrics["us_per_sample"] = prepr * scale;
    report.cases.push_back(hp);
    match::bench::BenchCase ha;
    ha.name = "hotpath/alias/n=" + std::to_string(n);
    ha.wall_seconds = alias_hp;
    ha.metrics["us_per_sample"] = alias_hp * scale;
    ha.metrics["speedup_alias_vs_prepr"] = speedup;
    report.cases.push_back(ha);
  }
  hot.print(std::cout);

  std::cout << "\n== End-to-end MatchOptimizer::run, " << e2e_iters
            << " iterations (early stops disabled) ==\n\n";
  Table e2e({"n", "scan wall s", "alias wall s", "best cost",
             "speedup_alias_vs_scan"});
  for (const std::size_t e2e_n : e2e_sizes) {
    std::fprintf(stderr, "micro_genperm: e2e n=%zu\n", e2e_n);
    match::rng::Rng setup(123);
    match::workload::PaperParams wp;
    wp.n = e2e_n;
    const auto inst = match::workload::make_paper_instance(wp, setup);
    const auto platform = inst.make_platform();
    const match::sim::CostEvaluator eval(inst.tig, platform);

    // Interleaved min-of-trials: thermal/frequency drift on a shared
    // machine hits both backends alike, and the min is the least-noisy
    // estimator of the true cost (same approach as ext_obs_overhead).
    // Alternating which backend goes first keeps a monotone clock ramp
    // from systematically favoring one side.  The runs are
    // deterministic, so best_cost/iterations agree across trials and
    // only the walls differ.
    E2eResult scan, alias;
    for (std::size_t trial = 0; trial < e2e_trials; ++trial) {
      E2eResult s, a;
      if (trial % 2 == 0) {
        s = time_end_to_end(eval, e2e_iters, SamplerBackend::kScan);
        a = time_end_to_end(eval, e2e_iters, SamplerBackend::kAlias);
      } else {
        a = time_end_to_end(eval, e2e_iters, SamplerBackend::kAlias);
        s = time_end_to_end(eval, e2e_iters, SamplerBackend::kScan);
      }
      if (trial == 0 || s.wall < scan.wall) scan = s;
      if (trial == 0 || a.wall < alias.wall) alias = a;
    }
    const double e2e_speedup = scan.wall / std::max(alias.wall, 1e-12);
    e2e.add_row({std::to_string(e2e_n), Table::num(scan.wall, 4),
                 Table::num(alias.wall, 4), Table::num(alias.best_cost, 1),
                 Table::num(e2e_speedup, 2)});

    match::bench::BenchCase es;
    es.name = "e2e/scan/n=" + std::to_string(e2e_n);
    es.wall_seconds = scan.wall;
    es.metrics["best_cost"] = scan.best_cost;
    es.metrics["iterations"] = static_cast<double>(scan.iterations);
    report.cases.push_back(es);
    match::bench::BenchCase ea;
    ea.name = "e2e/alias/n=" + std::to_string(e2e_n);
    ea.wall_seconds = alias.wall;
    ea.metrics["best_cost"] = alias.best_cost;
    ea.metrics["iterations"] = static_cast<double>(alias.iterations);
    ea.metrics["speedup_alias_vs_scan"] = e2e_speedup;
    report.cases.push_back(ea);
  }
  e2e.print(std::cout);


  const std::string path = report.write();
  std::cout << "report: " << path << "\n";
  return 0;
}
