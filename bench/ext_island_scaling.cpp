// Extension bench: the paper's future work ("a fully distributed
// implementation ... to eliminate the slow running time") prototyped as
// island-model CE.  Sweeps the island count at a fixed total sampling
// budget and reports mapping quality (ET) and wall-clock mapping time
// (MT) against single-matrix MaTCH.

#include <cstdio>
#include <cstring>
#include <iostream>

#include "core/island.hpp"
#include "core/matchalgo.hpp"
#include "io/table.hpp"
#include "workload/paper_suite.hpp"

int main(int argc, char** argv) {
  using match::io::Table;

  std::size_t n = 30;
  std::size_t runs = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      n = 20;
      runs = 1;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      n = 40;
      runs = 5;
    } else if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      n = std::strtoul(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--quick|--full] [--n N]\n", argv[0]);
      return 2;
    }
  }

  match::rng::Rng setup(5150);
  match::workload::PaperParams params;
  params.n = n;
  const auto inst = match::workload::make_paper_instance(params, setup);
  const auto platform = inst.make_platform();
  const match::sim::CostEvaluator eval(inst.tig, platform);

  std::cout << "== Extension: island-model MaTCH scaling (n = " << n << ", "
            << runs << " runs each) ==\n\n";
  Table table({"configuration", "mean ET", "mean MT (s)", "mean epochs"});

  // Baseline: single-matrix MaTCH.
  {
    double et = 0.0, mt = 0.0, iters = 0.0;
    for (std::size_t run = 0; run < runs; ++run) {
      match::core::MatchOptimizer opt(eval);
      match::rng::Rng rng(100 + run);
      const auto r = opt.run(match::SolverContext(rng));
      et += r.best_cost;
      mt += r.elapsed_seconds;
      iters += static_cast<double>(r.iterations);
    }
    table.add_row({"MaTCH (single matrix)",
                   Table::num(et / static_cast<double>(runs), 6),
                   Table::num(mt / static_cast<double>(runs), 3),
                   Table::num(iters / static_cast<double>(runs), 4)});
  }

  double et_single = 0.0, et_islands_best = 1e300;
  for (std::size_t k : {1u, 2u, 4u, 8u}) {
    match::core::IslandParams ip;
    ip.islands = k;
    double et = 0.0, mt = 0.0, epochs = 0.0;
    for (std::size_t run = 0; run < runs; ++run) {
      match::core::IslandMatchOptimizer opt(eval, ip);
      match::rng::Rng rng(100 + run);
      const auto r = opt.run(match::SolverContext(rng));
      et += r.best_cost;
      mt += r.elapsed_seconds;
      epochs += static_cast<double>(r.epochs);
    }
    et /= static_cast<double>(runs);
    mt /= static_cast<double>(runs);
    table.add_row({"islands=" + std::to_string(k), Table::num(et, 6),
                   Table::num(mt, 3),
                   Table::num(epochs / static_cast<double>(runs), 4)});
    if (k == 1) et_single = et;
    et_islands_best = std::min(et_islands_best, et);
    std::fprintf(stderr, "  islands=%zu done\n", k);
  }
  table.print(std::cout);

  const bool quality_holds = et_islands_best <= et_single * 1.05;
  std::cout << "\nshape-check: multi-island quality within 5% of "
               "single-island: "
            << (quality_holds ? "yes" : "NO") << "\n";
  return quality_holds ? 0 : 1;
}
