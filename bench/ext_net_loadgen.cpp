// Sustained-load generator for the network front end (net::MatchServer).
//
// Two phases against one server over loopback:
//
//  1. **Closed loop** — C connections, each a thread issuing synchronous
//     request/response round trips as fast as the server answers.  This
//     measures the saturation throughput λ* (requests/second) and the
//     in-loop latency distribution.
//
//  2. **Open loop** — Poisson arrivals (exponential gaps, optionally
//     with periodic bursts) offered at fixed fractions of λ*
//     (0.5×, 1×, 2×), pipelined over the connection pool with reader
//     threads.  Arrivals do not wait for responses, so when the offered
//     rate exceeds capacity the admission layer must shed — this phase
//     draws the saturation curve (offered vs served vs shed vs p99).
//
// The request mix is small paper instances registered inline once, then
// referenced by fingerprint with a fixed seed — i.e. solution-cache
// hits, the cheap high-rate traffic the wire format's fingerprint path
// exists for.  `--miss-fraction F` salts a fraction of seeds to force
// fresh solver runs; `--deadline S` attaches a strict deadline to
// everything so the rejection path is exercised too.
//
// By default the server runs in-process (ephemeral port) so the bench
// is standalone and can assert the admission accounting identity
// exactly: offered == served + shed + rejected + errors, checked
// against both the client's and the server's books.  `--port P`
// targets an external server instead (e.g. `match_server --listen P`);
// the identity check then uses client-side books only.
//
// Results land in BENCH_ext_net_loadgen.json: one case per phase/rate
// with requests/sec offered and served, shed/reject fractions, and
// client-observed p50/p99 latency.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/bench_report.hpp"
#include "io/table.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "rng/rng.hpp"
#include "service/service.hpp"
#include "workload/paper_suite.hpp"

namespace {

using match::net::Client;
using match::net::Priority;
using match::net::Status;
using match::net::WireRequest;
using match::net::WireResponse;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Options {
  bool quick = false;
  std::uint16_t port = 0;     ///< 0 = spawn the server in-process
  std::size_t connections = 4;
  double closed_seconds = 2.0;
  double open_seconds = 2.0;
  double miss_fraction = 0.0;  ///< fraction of requests with fresh seeds
  double deadline = 0.0;       ///< strict per-request deadline (0 = none)
  double burst_every = 0.0;    ///< inject a burst every S seconds (0 = off)
  std::size_t burst_size = 64;
  std::string out_dir = ".";
};

struct Tally {
  std::uint64_t offered = 0;
  std::uint64_t served = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t errors = 0;  ///< bad request / unknown instance / server error
  std::vector<double> latencies;

  void count(Status status) {
    switch (status) {
      case Status::kOk: ++served; break;
      case Status::kShed: ++shed; break;
      case Status::kRejectedDeadline: ++rejected; break;
      default: ++errors; break;
    }
  }
  void merge(const Tally& other) {
    offered += other.offered;
    served += other.served;
    shed += other.shed;
    rejected += other.rejected;
    errors += other.errors;
    latencies.insert(latencies.end(), other.latencies.begin(),
                     other.latencies.end());
  }
  std::uint64_t answered() const {
    return served + shed + rejected + errors;
  }
  double quantile(double q) {
    if (latencies.empty()) return 0.0;
    std::sort(latencies.begin(), latencies.end());
    const std::size_t idx = std::min(
        latencies.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(latencies.size())));
    return latencies[idx];
  }
};

/// The shared request mix: tiny instances, registered inline up front,
/// then addressed by fingerprint.
struct Mix {
  std::vector<std::shared_ptr<const match::workload::AnyInstance>> instances;
  std::vector<std::uint64_t> fingerprints;
};

Mix make_mix() {
  Mix mix;
  for (std::size_t i = 0; i < 3; ++i) {
    match::rng::Rng rng(500 + i);
    match::workload::PaperParams params;
    params.n = 8 + 2 * i;  // 8, 10, 12
    auto inst = std::make_shared<match::workload::AnyInstance>(
        match::workload::make_paper_instance(params, rng));
    mix.fingerprints.push_back(match::service::fingerprint_instance(*inst));
    mix.instances.push_back(std::move(inst));
  }
  return mix;
}

WireRequest make_request(const Mix& mix, std::uint64_t id, std::uint64_t seed,
                         const Options& opt) {
  WireRequest req;
  req.request_id = id;
  req.by_fingerprint = true;
  req.instance_fingerprint = mix.fingerprints[id % mix.fingerprints.size()];
  req.request.id = id;
  req.request.solver = match::service::SolverKind::kMinMin;
  req.request.options.seed = seed;
  if (opt.deadline > 0.0) {
    req.strict_deadline = true;
    req.request.options.deadline_seconds = opt.deadline;
  }
  return req;
}

/// Registers every instance inline (one request each) so the
/// fingerprint path works for the rest of the run, and warms the
/// solution cache for the base seed.
void register_instances(const std::string& host, std::uint16_t port,
                        const Mix& mix) {
  Client client(host, port);
  std::uint64_t id = 1;
  for (const auto& inst : mix.instances) {
    WireRequest req;
    req.request_id = id;
    req.request.id = id;
    req.request.instance = inst;
    req.request.solver = match::service::SolverKind::kMinMin;
    req.request.options.seed = 1;
    const WireResponse resp = client.call(req);
    if (resp.status != Status::kOk) {
      throw std::runtime_error(std::string("instance registration failed: ") +
                               match::net::to_string(resp.status));
    }
    ++id;
  }
}

/// Phase 1: C threads in closed loops; returns the merged tally.
Tally closed_loop(const std::string& host, std::uint16_t port, const Mix& mix,
                  const Options& opt) {
  std::vector<Tally> tallies(opt.connections);
  std::vector<std::thread> threads;
  std::atomic<bool> stop{false};
  for (std::size_t c = 0; c < opt.connections; ++c) {
    threads.emplace_back([&, c] {
      Client client(host, port);
      match::rng::Rng rng(9000 + c);
      Tally& tally = tallies[c];
      std::uint64_t id = (c + 1) << 32;
      while (!stop.load(std::memory_order_relaxed)) {
        const bool miss = opt.miss_fraction > 0.0 &&
                          rng.uniform() < opt.miss_fraction;
        const std::uint64_t seed = miss ? 1'000'000 + id : 1;
        const WireRequest req = make_request(mix, ++id, seed, opt);
        const auto sent = Clock::now();
        const WireResponse resp = client.call(req);
        ++tally.offered;
        tally.count(resp.status);
        tally.latencies.push_back(seconds_since(sent));
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(opt.closed_seconds));
  stop.store(true);
  for (auto& t : threads) t.join();
  Tally merged;
  for (const Tally& t : tallies) merged.merge(t);
  return merged;
}

/// Phase 2: Poisson arrivals at `rate` req/s for `duration` seconds,
/// pipelined round-robin over the connection pool; a reader thread per
/// connection collects responses.  Returns the merged tally (offered =
/// every send; every send gets exactly one response, so the client-side
/// books close once the readers drain).
Tally open_loop(const std::string& host, std::uint16_t port, const Mix& mix,
                const Options& opt, double rate, double duration) {
  std::vector<Client> clients;
  clients.reserve(opt.connections);
  for (std::size_t c = 0; c < opt.connections; ++c) {
    clients.emplace_back(host, port);
  }

  // Send timestamps by request id, so readers can compute latency.
  std::mutex sent_mutex;
  std::unordered_map<std::uint64_t, Clock::time_point> sent_log;
  sent_log.reserve(static_cast<std::size_t>(rate * duration) + 64);

  std::vector<Tally> reader_tallies(opt.connections);
  std::vector<std::thread> readers;
  for (std::size_t c = 0; c < opt.connections; ++c) {
    readers.emplace_back([&, c] {
      Tally& tally = reader_tallies[c];
      try {
        for (;;) {
          const WireResponse resp = clients[c].receive();
          tally.count(resp.status);
          Clock::time_point sent_at{};
          bool found = false;
          {
            std::lock_guard<std::mutex> lock(sent_mutex);
            const auto it = sent_log.find(resp.request_id);
            if (it != sent_log.end()) {
              sent_at = it->second;
              found = true;
              sent_log.erase(it);
            }
          }
          if (found) tally.latencies.push_back(seconds_since(sent_at));
        }
      } catch (const std::exception&) {
        // EOF after shutdown_send + server drain: the phase is over.
      }
    });
  }

  match::rng::Rng rng(31337);
  Tally sender;
  std::uint64_t id = 1ull << 48;
  const auto start = Clock::now();
  double next_arrival = 0.0;
  double next_burst = opt.burst_every;
  std::size_t turn = 0;
  while (true) {
    const double elapsed = seconds_since(start);
    if (elapsed >= duration) break;
    if (next_arrival > elapsed) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(next_arrival - elapsed));
    }
    std::size_t batch = 1;
    if (opt.burst_every > 0.0 && next_arrival >= next_burst) {
      batch += opt.burst_size;  // a burst rides on top of the process
      next_burst += opt.burst_every;
    }
    for (std::size_t b = 0; b < batch; ++b) {
      const bool miss =
          opt.miss_fraction > 0.0 && rng.uniform() < opt.miss_fraction;
      const std::uint64_t seed = miss ? 2'000'000 + id : 1;
      const WireRequest req = make_request(mix, ++id, seed, opt);
      {
        std::lock_guard<std::mutex> lock(sent_mutex);
        sent_log.emplace(req.request_id, Clock::now());
      }
      try {
        clients[turn % clients.size()].send(req);
        ++sender.offered;
      } catch (const std::exception&) {
        // Connection closed under us (e.g. slow-client eviction); count
        // the request as shed so the books still close.
        ++sender.shed;
        ++sender.offered;
      }
      ++turn;
    }
    // Exponential inter-arrival gap: Poisson process at `rate`.
    next_arrival += rng.exponential(rate);
  }

  // Half-close every connection; the server answers what it accepted,
  // then the readers see EOF once we close after the server drains.
  for (auto& c : clients) c.shutdown_send();
  // Give the server time to answer the tail, then force EOF.
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  while (Clock::now() < deadline) {
    std::uint64_t answered = sender.shed;  // locally-failed sends
    for (const Tally& t : reader_tallies) answered += t.answered();
    if (answered >= sender.offered) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  for (auto& c : clients) c.close();
  for (auto& t : readers) t.join();

  Tally merged;
  merged.offered = sender.offered;
  merged.shed = sender.shed;
  for (const Tally& t : reader_tallies) {
    merged.served += t.served;
    merged.shed += t.shed;
    merged.rejected += t.rejected;
    merged.errors += t.errors;
    merged.latencies.insert(merged.latencies.end(), t.latencies.begin(),
                            t.latencies.end());
  }
  return merged;
}

match::bench::BenchCase to_case(const std::string& name, Tally& tally,
                                double wall_seconds, double offered_rate) {
  match::bench::BenchCase c;
  c.name = name;
  c.wall_seconds = wall_seconds;
  c.metrics["offered"] = static_cast<double>(tally.offered);
  c.metrics["offered_per_sec"] = offered_rate;
  c.metrics["served_per_sec"] =
      static_cast<double>(tally.served) / wall_seconds;
  c.metrics["served"] = static_cast<double>(tally.served);
  c.metrics["shed"] = static_cast<double>(tally.shed);
  c.metrics["rejected_deadline"] = static_cast<double>(tally.rejected);
  c.metrics["errors"] = static_cast<double>(tally.errors);
  c.metrics["shed_fraction"] =
      tally.offered == 0
          ? 0.0
          : static_cast<double>(tally.shed) /
                static_cast<double>(tally.offered);
  c.metrics["p50_seconds"] = tally.quantile(0.50);
  c.metrics["p99_seconds"] = tally.quantile(0.99);
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opt.quick = true;
      opt.closed_seconds = 0.5;
      opt.open_seconds = 0.5;
      opt.connections = 2;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      opt.closed_seconds = 5.0;
      opt.open_seconds = 5.0;
      opt.connections = 8;
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      opt.port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--connections") == 0 && i + 1 < argc) {
      opt.connections = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      opt.closed_seconds = opt.open_seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--miss-fraction") == 0 && i + 1 < argc) {
      opt.miss_fraction = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--deadline") == 0 && i + 1 < argc) {
      opt.deadline = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--burst-every") == 0 && i + 1 < argc) {
      opt.burst_every = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--burst-size") == 0 && i + 1 < argc) {
      opt.burst_size = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--out-dir") == 0 && i + 1 < argc) {
      opt.out_dir = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--quick|--full] [--port P] [--connections C]"
                << " [--seconds S] [--miss-fraction F] [--deadline S]"
                << " [--burst-every S [--burst-size N]] [--out-dir D]\n";
      return 2;
    }
  }
  if (opt.connections == 0) opt.connections = 1;

  // In-process server unless --port points at an external one.
  std::unique_ptr<match::service::MappingService> service;
  std::unique_ptr<match::net::MatchServer> server;
  std::uint16_t port = opt.port;
  const bool in_process = opt.port == 0;
  if (in_process) {
    match::service::ServiceConfig sconfig;
    sconfig.workers = 4;
    sconfig.queue_capacity = 2048;
    service = std::make_unique<match::service::MappingService>(sconfig);
    match::net::ServerConfig nconfig;
    nconfig.admission.max_pending = 512;
    server = std::make_unique<match::net::MatchServer>(*service, nconfig);
    port = server->port();
  }
  const std::string host = "127.0.0.1";
  std::cout << "== ext_net_loadgen: " << (in_process ? "in-process" : "external")
            << " server on " << host << ":" << port << ", "
            << opt.connections << " connections ==\n";

  const Mix mix = make_mix();
  register_instances(host, port, mix);

  match::bench::BenchReport report;
  report.name = "ext_net_loadgen";
  report.git_sha = match::bench::current_git_sha();
  report.config["quick"] = opt.quick ? "1" : "0";
  report.config["connections"] = std::to_string(opt.connections);
  report.config["closed_seconds"] = std::to_string(opt.closed_seconds);
  report.config["open_seconds"] = std::to_string(opt.open_seconds);
  report.config["miss_fraction"] = std::to_string(opt.miss_fraction);
  report.config["deadline"] = std::to_string(opt.deadline);
  report.config["in_process"] = in_process ? "1" : "0";

  bool ok = true;
  match::io::Table table({"phase", "offered/s", "served/s", "shed %",
                          "p50 ms", "p99 ms"});

  // ---- Phase 1: closed loop to find the saturation throughput. ---------
  Tally closed = closed_loop(host, port, mix, opt);
  const double closed_rate =
      static_cast<double>(closed.offered) / opt.closed_seconds;
  {
    Tally& t = closed;
    table.add_row({"closed loop", match::io::Table::num(closed_rate, 0),
                   match::io::Table::num(
                       static_cast<double>(t.served) / opt.closed_seconds, 0),
                   match::io::Table::num(
                       100.0 * static_cast<double>(t.shed) /
                           std::max<std::uint64_t>(1, t.offered), 2),
                   match::io::Table::num(1e3 * t.quantile(0.50), 3),
                   match::io::Table::num(1e3 * t.quantile(0.99), 3)});
    report.cases.push_back(
        to_case("closed_loop", closed, opt.closed_seconds, closed_rate));
    if (t.offered != t.answered()) {
      std::cerr << "FAIL: closed loop offered " << t.offered
                << " but answered " << t.answered() << "\n";
      ok = false;
    }
  }

  // ---- Phase 2: open loop at 0.5x / 1x / 2x of saturation. -------------
  for (const double mult : {0.5, 1.0, 2.0}) {
    const double rate = std::max(100.0, closed_rate * mult);
    Tally t = open_loop(host, port, mix, opt, rate, opt.open_seconds);
    const std::string name =
        "open_loop_" + match::io::Table::num(mult, 1) + "x";
    table.add_row({name, match::io::Table::num(rate, 0),
                   match::io::Table::num(
                       static_cast<double>(t.served) / opt.open_seconds, 0),
                   match::io::Table::num(
                       100.0 * static_cast<double>(t.shed) /
                           std::max<std::uint64_t>(1, t.offered), 2),
                   match::io::Table::num(1e3 * t.quantile(0.50), 3),
                   match::io::Table::num(1e3 * t.quantile(0.99), 3)});
    report.cases.push_back(to_case(name, t, opt.open_seconds, rate));
    if (t.offered != t.answered()) {
      std::cerr << "FAIL: " << name << " offered " << t.offered
                << " but answered " << t.answered()
                << " (served " << t.served << ", shed " << t.shed
                << ", rejected " << t.rejected << ", errors " << t.errors
                << ")\n";
      ok = false;
    }
  }

  table.print(std::cout);

  // ---- Server-side accounting (in-process only): the identity must ----
  // ---- hold on the server's books too, plus the registration calls. ---
  if (in_process) {
    server->stop();
    const match::net::ServerCounters c = server->counters();
    if (c.requests != c.terminal()) {
      std::cerr << "FAIL: server books do not balance: requests=" << c.requests
                << " terminal=" << c.terminal() << "\n";
      ok = false;
    }
    std::cout << "server books: " << c.requests << " requests == "
              << c.served << " served + " << c.shed << " shed + "
              << c.rejected_deadline << " rejected + "
              << c.bad_request + c.unknown_instance + c.server_error
              << " errors: " << (c.requests == c.terminal() ? "yes" : "NO")
              << "\n";
    report.attach_snapshot(service->metrics().snapshot());
    service->shutdown();
  }

  const std::string path = report.write(opt.out_dir);
  std::cout << "report: " << path << "\n";
  std::cout << (ok ? "OK" : "FAILED") << "\n";
  return ok ? 0 : 1;
}
