// Extension bench: CE on the traveling-salesman problem — the other
// canonical permutation COP of the CE literature the paper builds on.
// Small instances: exact recovery vs brute force.  Medium instances:
// CE vs nearest-neighbor, NN+2-opt, and CE+2-opt hybrid.

#include <cstdio>
#include <cstring>
#include <iostream>

#include "core/tsp.hpp"
#include "io/table.hpp"

int main(int argc, char** argv) {
  using match::io::Table;

  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      // default
    } else {
      std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
      return 2;
    }
  }

  std::cout << "== Extension: cross-entropy TSP ==\n\n";

  // Part 1: exact recovery on small instances.
  bool all_exact = true;
  {
    Table table({"instance", "CE best", "exact optimum", "found"});
    const std::size_t trials = quick ? 2 : 4;
    for (std::size_t t = 0; t < trials; ++t) {
      match::rng::Rng gen(100 + t);
      auto tsp = match::core::TspProblem::random_euclidean(10, gen);
      const double optimum = tsp.brute_force_optimum();

      double best = std::numeric_limits<double>::infinity();
      for (std::uint64_t restart = 0; restart < 3; ++restart) {
        auto fresh = tsp;
        match::core::CeDriverParams params;
        params.sample_size = 400;
        params.rho = 0.05;
        match::rng::Rng rng(10 * t + restart);
        best = std::min(best,
                        match::core::run_ce(fresh, params, match::SolverContext(rng)).best_cost);
      }
      const bool found = std::abs(best - optimum) < 1e-9;
      all_exact &= found;
      table.add_row({"euclid-10-" + std::to_string(t), Table::num(best, 6),
                     Table::num(optimum, 6), found ? "yes" : "NO"});
    }
    table.print(std::cout);
  }

  // Part 2: medium instances vs constructive baselines.
  std::cout << "\n-- medium Euclidean instances --\n";
  bool ce_reasonable = true;
  {
    Table table({"cities", "CE", "CE + 2-opt", "NN", "NN + 2-opt"});
    for (const std::size_t n : {30u, 60u}) {
      match::rng::Rng gen(200 + n);
      auto tsp = match::core::TspProblem::random_euclidean(n, gen);

      match::core::CeDriverParams params;
      params.sample_size = quick ? 300 : 800;
      params.zeta = 0.7;
      match::rng::Rng rng(5);
      const auto ce = match::core::run_ce(tsp, params, match::SolverContext(rng));
      const double ce_cost = ce.best_cost;
      const double ce_2opt = tsp.cost(tsp.two_opt(ce.best));

      const auto nn = tsp.nearest_neighbor_tour();
      const double nn_cost = tsp.cost(nn);
      const double nn_2opt = tsp.cost(tsp.two_opt(nn));

      table.add_row({std::to_string(n), Table::num(ce_cost, 5),
                     Table::num(ce_2opt, 5), Table::num(nn_cost, 5),
                     Table::num(nn_2opt, 5)});
      // Plain CE needs very large batches to be competitive at n = 60+;
      // the claim the CE literature actually makes is for the hybrid:
      // CE + local search matches NN + local search.
      ce_reasonable &= ce_2opt <= 1.1 * nn_2opt;
      ce_reasonable &= ce_2opt <= ce_cost + 1e-9;
      std::fprintf(stderr, "  n=%zu done\n", n);
    }
    table.print(std::cout);
  }

  std::cout << "\nshape-check: CE recovers every small optimum: "
            << (all_exact ? "yes" : "NO") << "\n";
  std::cout << "shape-check: CE+2-opt competitive with NN+2-opt on medium "
               "instances: "
            << (ce_reasonable ? "yes" : "NO") << "\n";
  return (all_exact && ce_reasonable) ? 0 : 1;
}
