// Extension bench: dynamic re-mapping with warm-started CE.
//
// Scenario: an application is mapped, then the platform degrades (one
// resource slows down by a factor).  Compares three reactions:
//   keep    — keep the stale mapping (no reaction),
//   cold    — re-run MaTCH from the uniform matrix,
//   warm    — re-run MaTCH from the anchored matrix (core/rematch.hpp).
// Reported per degradation factor: resulting ET and the mapping time of
// the reaction.  The shape: warm matches cold's quality at a fraction of
// the iterations.

#include <cstdio>
#include <cstring>
#include <iostream>

#include "core/rematch.hpp"
#include "io/table.hpp"
#include "sim/perturb.hpp"
#include "workload/paper_suite.hpp"

int main(int argc, char** argv) {
  using match::io::Table;

  std::size_t n = 25;
  std::size_t runs = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      n = 15;
      runs = 1;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      n = 40;
      runs = 5;
    } else {
      std::fprintf(stderr, "usage: %s [--quick|--full]\n", argv[0]);
      return 2;
    }
  }

  match::rng::Rng setup(777);
  match::workload::PaperParams params;
  params.n = n;
  const auto inst = match::workload::make_paper_instance(params, setup);
  const auto platform = inst.make_platform();
  const match::sim::CostEvaluator eval(inst.tig, platform);

  std::cout << "== Extension: dynamic re-mapping after resource slowdown "
               "(n = " << n << ") ==\n\n";
  Table table({"slowdown", "ET keep-stale", "ET cold restart", "ET warm",
               "iters cold", "iters warm"});

  bool warm_ok = true;
  for (const double slowdown : {2.0, 5.0, 10.0}) {
    double et_keep = 0.0, et_cold = 0.0, et_warm = 0.0;
    double it_cold = 0.0, it_warm = 0.0;
    for (std::size_t run = 0; run < runs; ++run) {
      match::rng::Rng r0(50 + run);
      const auto initial = match::core::MatchOptimizer(eval).run(match::SolverContext(r0));

      // Degrade the resource that carries the critical load.
      const auto victim = eval.evaluate(initial.best_mapping).busiest;
      const auto degraded =
          match::sim::scale_processing_cost(inst.resources, victim, slowdown);
      const match::sim::Platform new_platform(degraded);
      const match::sim::CostEvaluator new_eval(inst.tig, new_platform);

      et_keep += new_eval.makespan(initial.best_mapping);

      match::rng::Rng r1(90 + run);
      const auto cold = match::core::MatchOptimizer(new_eval).run(match::SolverContext(r1));
      et_cold += cold.best_cost;
      it_cold += static_cast<double>(cold.iterations);

      match::rng::Rng r2(90 + run);
      match::core::RematchParams rp;
      const auto warm =
          match::core::rematch(new_eval, initial.best_mapping, rp, match::SolverContext(r2));
      et_warm += warm.best_cost;
      it_warm += static_cast<double>(warm.iterations);
    }
    const double k = static_cast<double>(runs);
    table.add_row({Table::num(slowdown, 3), Table::num(et_keep / k, 6),
                   Table::num(et_cold / k, 6), Table::num(et_warm / k, 6),
                   Table::num(it_cold / k, 4), Table::num(it_warm / k, 4)});
    warm_ok &= (et_warm <= et_keep + 1e-9) && (et_warm <= et_cold * 1.05);
    std::fprintf(stderr, "  slowdown %.0fx done\n", slowdown);
  }
  table.print(std::cout);

  std::cout << "\nshape-check: warm re-mapping beats keeping the stale "
               "mapping and stays within 5% of a cold restart: "
            << (warm_ok ? "yes" : "NO") << "\n";
  return warm_ok ? 0 : 1;
}
