#include "sweep.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <stdexcept>

#include "io/run_record.hpp"
#include "rng/splitmix64.hpp"
#include "sim/evaluator.hpp"
#include "workload/paper_suite.hpp"

namespace match::bench {

namespace {

std::vector<std::size_t> parse_size_list(const char* arg) {
  std::vector<std::size_t> sizes;
  const char* cursor = arg;
  while (*cursor != '\0') {
    char* end = nullptr;
    const unsigned long v = std::strtoul(cursor, &end, 10);
    if (end == cursor || v == 0) {
      throw std::invalid_argument("bad --sizes list");
    }
    sizes.push_back(v);
    cursor = (*end == ',') ? end + 1 : end;
  }
  if (sizes.empty()) throw std::invalid_argument("empty --sizes list");
  return sizes;
}

[[noreturn]] void usage_and_exit(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--quick | --full] [--sizes 10,20,...]"
               " [--instances K] [--runs K] [--csv PATH]\n"
               "  default: reduced protocol (3 instances x 3 runs);\n"
               "  --full:  the paper's 5 instances x 5 runs;\n"
               "  --quick: 1 instance x 1 run (smoke test).\n",
               prog);
  std::exit(2);
}

}  // namespace

SweepProtocol SweepProtocol::from_args(int argc, char** argv) {
  SweepProtocol p;
  p.instances_per_size = 3;
  p.runs_per_instance = 3;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) usage_and_exit(argv[0]);
      return argv[++i];
    };
    if (std::strcmp(arg, "--quick") == 0) {
      p.instances_per_size = 1;
      p.runs_per_instance = 1;
    } else if (std::strcmp(arg, "--full") == 0) {
      p.instances_per_size = 5;
      p.runs_per_instance = 5;
    } else if (std::strcmp(arg, "--sizes") == 0) {
      p.sizes = parse_size_list(next_value());
    } else if (std::strcmp(arg, "--instances") == 0) {
      p.instances_per_size = std::strtoul(next_value(), nullptr, 10);
    } else if (std::strcmp(arg, "--runs") == 0) {
      p.runs_per_instance = std::strtoul(next_value(), nullptr, 10);
    } else if (std::strcmp(arg, "--csv") == 0) {
      p.csv_path = next_value();
    } else {
      usage_and_exit(argv[0]);
    }
  }
  if (p.instances_per_size == 0 || p.runs_per_instance == 0) {
    usage_and_exit(argv[0]);
  }
  return p;
}

std::vector<SweepRow> run_sweep(const SweepProtocol& protocol) {
  std::vector<SweepRow> rows;
  rows.reserve(protocol.sizes.size());

  std::ofstream csv_stream;
  std::optional<io::RunLog> log;
  if (!protocol.csv_path.empty()) {
    csv_stream.open(protocol.csv_path);
    if (!csv_stream) {
      throw std::runtime_error("run_sweep: cannot open " + protocol.csv_path);
    }
    log.emplace(csv_stream);
  }

  for (const std::size_t n : protocol.sizes) {
    SweepRow row;
    row.n = n;

    for (std::size_t inst_idx = 0; inst_idx < protocol.instances_per_size;
         ++inst_idx) {
      // Instance seed derives from (base, n, index) so any subset of the
      // sweep reuses identical instances.
      rng::SplitMix64 seeder(protocol.base_seed ^ (n * 1315423911ULL) ^
                             inst_idx);
      rng::Rng inst_rng(seeder.next());
      workload::PaperParams params;
      params.n = n;
      // The paper varies the computation/communication ratio across its
      // five graphs; spread comm_scale geometrically over [0.5, 2].
      const double f = protocol.instances_per_size == 1
                           ? 0.5
                           : static_cast<double>(inst_idx) /
                                 static_cast<double>(
                                     protocol.instances_per_size - 1);
      params.comm_scale = 0.5 * std::pow(4.0, f);
      const workload::Instance instance =
          workload::make_paper_instance(params, inst_rng);
      const sim::Platform platform = instance.make_platform();
      const sim::CostEvaluator eval(instance.tig, platform);

      for (std::size_t run = 0; run < protocol.runs_per_instance; ++run) {
        const std::uint64_t run_seed = seeder.next() ^ run;

        core::MatchOptimizer matcher(eval, protocol.match_params);
        rng::Rng match_rng(run_seed);
        const core::MatchResult mr = matcher.run(match::SolverContext(match_rng));
        row.et_match += mr.best_cost;
        row.mt_match += mr.elapsed_seconds;

        baselines::GaOptimizer ga(eval, protocol.ga);
        rng::Rng ga_rng(run_seed);
        const baselines::GaResult gr = ga.run(match::SolverContext(ga_rng));
        row.et_ga += gr.best_cost;
        row.mt_ga += gr.elapsed_seconds;

        if (log) {
          io::RunRecord rec;
          rec.experiment = "sweep";
          rec.instance = instance.name;
          rec.n = n;
          rec.seed = run_seed;

          rec.heuristic = "match";
          rec.cost = mr.best_cost;
          rec.seconds = mr.elapsed_seconds;
          rec.iterations = mr.iterations;
          rec.evaluations = mr.iterations * matcher.effective_sample_size();
          log->add(rec);

          rec.heuristic = "fastmap-ga";
          rec.cost = gr.best_cost;
          rec.seconds = gr.elapsed_seconds;
          rec.iterations = gr.generations;
          rec.evaluations = gr.generations * protocol.ga.population;
          log->add(rec);
        }

        ++row.samples;
        std::fprintf(stderr,
                     "  [n=%zu inst=%zu run=%zu] ET  MaTCH=%.0f  GA=%.0f   "
                     "MT  MaTCH=%.2fs  GA=%.2fs\n",
                     n, inst_idx, run, mr.best_cost, gr.best_cost,
                     mr.elapsed_seconds, gr.elapsed_seconds);
      }
    }

    const double k = static_cast<double>(row.samples);
    row.et_ga /= k;
    row.et_match /= k;
    row.mt_ga /= k;
    row.mt_match /= k;
    row.et_ratio = row.et_ga / row.et_match;
    row.mt_ratio = row.mt_match / row.mt_ga;
    rows.push_back(row);
  }
  return rows;
}

const std::vector<PaperReference>& paper_reference() {
  static const std::vector<PaperReference> kRef = {
      {10, 16585, 3516, 4.717, 13.62, 13.47, 0.989},
      {20, 125579, 8489, 14.793, 22.25, 58.65, 2.636},
      {30, 307158, 13817, 23.292, 32.58, 268.32, 8.23},
      {40, 534124, 17610, 30.33, 42.97, 883.96, 20.57},
      {50, 921359, 23858, 38.618, 50.66, 1587.75, 31.34},
  };
  return kRef;
}

}  // namespace match::bench
