// Extension bench: full dynamic scenario — a synthetic availability
// trace (slowdowns, link degradations, recoveries) replayed under three
// reaction policies.  Reports the mean ET the application observed over
// the trace and the total time spent re-mapping.

#include <cstdio>
#include <cstring>
#include <iostream>

#include "io/table.hpp"
#include "workload/paper_suite.hpp"
#include "workload/trace.hpp"

int main(int argc, char** argv) {
  using match::io::Table;

  std::size_t n = 20;
  std::size_t num_events = 12;
  std::size_t trials = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      n = 12;
      num_events = 6;
      trials = 1;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      n = 30;
      num_events = 20;
      trials = 5;
    } else {
      std::fprintf(stderr, "usage: %s [--quick|--full]\n", argv[0]);
      return 2;
    }
  }

  std::cout << "== Extension: availability-trace replay (n = " << n << ", "
            << num_events << " events, " << trials << " traces) ==\n\n";

  const match::workload::ReplayPolicy policies[] = {
      match::workload::ReplayPolicy::kStatic,
      match::workload::ReplayPolicy::kWarmRematch,
      match::workload::ReplayPolicy::kColdRestart,
  };

  double mean_et[3] = {0, 0, 0};
  double map_seconds[3] = {0, 0, 0};

  for (std::size_t trial = 0; trial < trials; ++trial) {
    match::rng::Rng setup(8000 + trial);
    match::workload::PaperParams params;
    params.n = n;
    const auto inst = match::workload::make_paper_instance(params, setup);

    match::rng::Rng trace_rng(9000 + trial);
    match::workload::TraceParams tp;
    tp.num_events = num_events;
    const auto events =
        match::workload::make_degradation_trace(n, tp, trace_rng);

    for (int p = 0; p < 3; ++p) {
      match::rng::Rng rng(42 + trial);
      const auto r = match::workload::replay_trace(
          inst.tig, inst.resources, events, policies[p], rng);
      mean_et[p] += r.mean_et;
      map_seconds[p] += r.total_mapping_seconds;
    }
    std::fprintf(stderr, "  trace %zu done\n", trial);
  }

  Table table({"policy", "mean ET over trace", "vs static",
               "total mapping time (s)"});
  for (int p = 0; p < 3; ++p) {
    table.add_row({match::workload::to_string(policies[p]),
                   Table::num(mean_et[p] / trials, 6),
                   Table::num(mean_et[p] / mean_et[0], 4),
                   Table::num(map_seconds[p] / trials, 3)});
  }
  table.print(std::cout);

  const bool warm_helps = mean_et[1] <= mean_et[0] + 1e-9;
  const bool warm_cheaper = map_seconds[1] <= map_seconds[2] + 1e-9;
  std::cout << "\nshape-check: warm re-mapping lowers the ET the "
               "application observes: "
            << (warm_helps ? "yes" : "NO") << "\n";
  std::cout << "shape-check: warm re-mapping is cheaper than cold restarts: "
            << (warm_cheaper ? "yes" : "NO") << "\n";
  return (warm_helps && warm_cheaper) ? 0 : 1;
}
