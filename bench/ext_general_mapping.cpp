// Extension bench: the |V_t| != |V_r| case the paper defers ("a few
// simple modifications ... take care of other cases").  Compares the
// general CE mapper against the clustering pipeline (FastMap's family),
// simulated annealing, and random assignment as the number of tasks per
// resource grows.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "baselines/clustering.hpp"
#include "baselines/local_search.hpp"
#include "core/general_match.hpp"
#include "graph/generators.hpp"
#include "io/table.hpp"

namespace {

double random_assignment_best(const match::sim::CostEvaluator& eval,
                              std::size_t samples, match::rng::Rng& rng) {
  const std::size_t nt = eval.num_tasks();
  const std::size_t nr = eval.num_resources();
  double best = std::numeric_limits<double>::infinity();
  std::vector<match::graph::NodeId> assign(nt);
  for (std::size_t i = 0; i < samples; ++i) {
    for (auto& a : assign) {
      a = static_cast<match::graph::NodeId>(rng.below(nr));
    }
    best = std::min(best, eval.makespan(assign));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using match::io::Table;

  std::size_t resources = 8;
  std::vector<std::size_t> task_counts = {16, 32, 64};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      task_counts = {16, 32};
    } else if (std::strcmp(argv[i], "--full") == 0) {
      task_counts = {16, 32, 64, 128};
    } else {
      std::fprintf(stderr, "usage: %s [--quick|--full]\n", argv[0]);
      return 2;
    }
  }

  std::cout << "== Extension: many-to-one mapping, " << resources
            << " resources ==\n\n";
  Table table({"tasks", "CE (general)", "cluster+refine", "sim. annealing",
               "random best", "CE time (s)", "cluster time (s)"});

  bool ce_competitive = true;
  for (const std::size_t nt : task_counts) {
    match::rng::Rng gen(40 + nt);
    const match::graph::Tig tig(match::graph::make_clustered(
        nt, 4, 0.6, 0.1, {1, 10}, {50, 100}, gen));
    const match::sim::Platform plat(match::graph::ResourceGraph(
        match::graph::make_complete(resources, {1, 5}, {10, 20}, gen)));
    const match::sim::CostEvaluator eval(tig, plat);

    match::core::GeneralMatchParams gp;
    gp.sample_size = 2 * nt * resources;
    match::core::GeneralMatchOptimizer ce(eval, gp);
    match::rng::Rng r1(7);
    const auto ce_result = ce.run(match::SolverContext(r1));

    match::rng::Rng r2(7);
    const auto cluster_result =
        match::baselines::cluster_map_refine(eval, {}, r2);

    // SA generalizes to many-to-one via single-task moves; reuse swap SA
    // on the assignment directly is permutation-bound, so use random +
    // hill-like SA here: draw with the clustering's budget.
    match::rng::Rng r3(7);
    match::baselines::SaParams sp;
    sp.steps = 30000;
    // simulated_annealing swaps tasks' resources; on many-to-one
    // instances a swap is still a valid move (resources exchange), which
    // explores assignments with the initial multiset of resources.  Seed
    // it with the clustering result's shape by starting from random —
    // acceptable as a baseline.
    double sa_cost;
    {
      // Start from a random many-to-one assignment and anneal single-task
      // moves inline (the library SA is permutation-focused).
      std::vector<match::graph::NodeId> assign(nt);
      for (auto& a : assign) {
        a = static_cast<match::graph::NodeId>(r3.below(resources));
      }
      match::sim::LoadTracker tracker(eval,
                                      match::sim::Mapping(std::move(assign)));
      double current = tracker.makespan();
      double best = current;
      double temp = current * 0.1;
      for (std::size_t step = 0; step < sp.steps; ++step) {
        const auto t = static_cast<match::graph::NodeId>(r3.below(nt));
        const auto r = static_cast<match::graph::NodeId>(r3.below(resources));
        const double delta = tracker.peek_move_delta(t, r);
        if (delta <= 0.0 || r3.uniform() < std::exp(-delta / temp)) {
          tracker.apply_move(t, r);
          current += delta;
          best = std::min(best, tracker.makespan());
        }
        temp *= 0.9997;
      }
      sa_cost = best;
    }

    match::rng::Rng r4(7);
    const double random_best = random_assignment_best(eval, 20000, r4);

    table.add_row({std::to_string(nt), Table::num(ce_result.best_cost, 6),
                   Table::num(cluster_result.best_cost, 6),
                   Table::num(sa_cost, 6), Table::num(random_best, 6),
                   Table::num(ce_result.elapsed_seconds, 3),
                   Table::num(cluster_result.elapsed_seconds, 3)});

    ce_competitive &= ce_result.best_cost <= random_best;
    std::fprintf(stderr, "  tasks=%zu done\n", nt);
  }
  table.print(std::cout);

  std::cout << "\nshape-check: general CE beats random assignment at every "
               "scale: "
            << (ce_competitive ? "yes" : "NO") << "\n";
  return ce_competitive ? 0 : 1;
}
