// Reproduces Table 1 and Figure 7: application execution time (ET) of
// FastMap-GA vs MaTCH over |V_r| = |V_t| = 10..50, and the improvement
// factor ET_GA / ET_MaTCH.
//
// The paper reports ET improvement factors rising from ~4.7x (n=10) to
// ~38.6x (n=50).  Absolute ET values depend on the random instances; the
// shape to reproduce is (a) MaTCH wins at every size and (b) the factor
// grows with n.

#include <cstdio>
#include <iostream>

#include "obs/bench_report.hpp"
#include "io/ascii_chart.hpp"
#include "io/table.hpp"
#include "sweep.hpp"

int main(int argc, char** argv) {
  using match::io::Table;
  const auto protocol = match::bench::SweepProtocol::from_args(argc, argv);

  std::fprintf(stderr, "table1_fig7: ET sweep (%zu sizes, %zu x %zu samples per size)\n",
               protocol.sizes.size(), protocol.instances_per_size,
               protocol.runs_per_instance);
  const auto rows = match::bench::run_sweep(protocol);

  std::cout << "== Table 1: Comparison of the Execution times between "
               "FastMap-GA and MaTCH ==\n\n";
  Table table({"|Vr|=|Vt|", "ET_GA (measured)", "ET_MaTCH (measured)",
               "ET_GA/ET_MaTCH (measured)", "ET_GA/ET_MaTCH (paper)"});
  for (const auto& row : rows) {
    // Paper reference for the matching size, if any.
    std::string paper_ratio = "-";
    for (const auto& ref : match::bench::paper_reference()) {
      if (ref.n == row.n) paper_ratio = Table::num(ref.et_ratio, 4);
    }
    table.add_row({std::to_string(row.n), Table::num(row.et_ga, 6),
                   Table::num(row.et_match, 6), Table::num(row.et_ratio, 4),
                   paper_ratio});
  }
  table.print(std::cout);

  std::cout << "\n== Figure 7: Execution Time in Units for FastMap-GA and "
               "MaTCH ==\n";
  std::vector<std::string> labels;
  std::vector<double> ga_series, match_series;
  for (const auto& row : rows) {
    labels.push_back(std::to_string(row.n));
    ga_series.push_back(row.et_ga);
    match_series.push_back(row.et_match);
  }
  match::io::AsciiChart chart("ET vs number of resources", labels);
  chart.set_log_y(true);
  chart.add_series({"FastMap-GA", ga_series, 'g'});
  chart.add_series({"MaTCH", match_series, 'm'});
  chart.print(std::cout);

  // Machine-readable perf point: one case per problem size, wall time =
  // MaTCH mapping time, execution-time ratios as case metrics.
  {
    match::bench::BenchReport report;
    report.name = "table1_fig7_exec_time";
    report.git_sha = match::bench::current_git_sha();
    std::string sizes;
    for (const auto& row : rows) {
      if (!sizes.empty()) sizes.push_back(',');
      sizes += std::to_string(row.n);
    }
    report.config = {
        {"sizes", sizes},
        {"instances_per_size", std::to_string(protocol.instances_per_size)},
        {"runs_per_instance", std::to_string(protocol.runs_per_instance)}};
    for (const auto& row : rows) {
      match::bench::BenchCase c;
      c.name = "n=" + std::to_string(row.n);
      c.wall_seconds = row.mt_match;
      c.metrics["et_ga"] = row.et_ga;
      c.metrics["et_match"] = row.et_match;
      c.metrics["et_ratio"] = row.et_ratio;
      c.metrics["mt_ga_seconds"] = row.mt_ga;
      c.metrics["samples"] = static_cast<double>(row.samples);
      report.cases.push_back(std::move(c));
    }
    std::cout << "\nbench json: " << report.write() << "\n";
  }

  // Shape verdicts the harness greps for.  A 3% parity band absorbs the
  // small-n regime where both heuristics sit at/near the optimum (our
  // faithful GA is far stronger than the paper's; see EXPERIMENTS.md).
  bool match_wins_everywhere = true;
  for (const auto& row : rows) {
    match_wins_everywhere &= row.et_match <= row.et_ga * 1.03;
  }
  const bool factor_grows =
      rows.size() < 2 || rows.back().et_ratio > rows.front().et_ratio;
  std::cout << "shape-check: MaTCH wins or ties (<=3%) at every size: "
            << (match_wins_everywhere ? "yes" : "NO") << "\n";
  std::cout << "shape-check: improvement factor grows with n: "
            << (factor_grows ? "yes" : "NO") << "\n";
  return (match_wins_everywhere && factor_grows) ? 0 : 1;
}
