// Extension bench: mapping-service throughput vs worker count.
//
// Submits a fixed closed-loop batch of solver requests (cache disabled,
// so every request costs a real solve) to MappingService instances with
// 1, 2 and 4 workers and reports requests/sec and latency percentiles.
// Results are appended to stdout as io::RunRecord CSV rows
// (experiment="service", cost = p99 latency in seconds, seconds = wall
// time), so service performance joins the library's CSV bench
// trajectory.

#include <chrono>
#include <cstring>
#include <future>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "obs/bench_report.hpp"
#include "io/run_record.hpp"
#include "io/table.hpp"
#include "obs/metrics.hpp"
#include "service/service.hpp"
#include "workload/paper_suite.hpp"

namespace {

using match::service::MapRequest;
using match::service::MapResponse;
using match::service::MappingService;
using match::service::ServiceStats;
using match::service::SolverKind;

struct BenchResult {
  std::size_t workers = 0;
  double wall_seconds = 0.0;
  double requests_per_second = 0.0;
  ServiceStats stats;
  match::obs::MetricsSnapshot snapshot;  ///< solver + service metrics
};

BenchResult run_batch(
    std::size_t workers,
    const std::vector<std::shared_ptr<const match::workload::AnyInstance>>&
        instances,
    std::size_t requests, std::size_t match_iterations) {
  match::service::ServiceConfig config;
  config.workers = workers;
  config.cache_capacity = 0;  // every request pays for a real solve
  MappingService service(config);

  match::rng::Rng pick(7);
  std::vector<std::future<MapResponse>> futures;
  futures.reserve(requests);

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < requests; ++i) {
    MapRequest request;
    request.id = i;
    request.instance = instances[pick.below(instances.size())];
    request.solver = SolverKind::kMatch;
    request.options.seed = 1 + (i % 16);
    request.options.max_iterations = match_iterations;
    request.options.use_cache = false;
    futures.push_back(service.submit(std::move(request)));
  }
  for (auto& f : futures) f.get();
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();

  BenchResult result;
  result.workers = workers;
  result.wall_seconds = wall;
  result.requests_per_second = static_cast<double>(requests) / wall;
  result.stats = service.stats();
  result.snapshot = service.metrics().snapshot();
  service.shutdown();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 10;
  std::size_t requests = 160;
  std::size_t match_iterations = 15;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      requests = 48;
      match_iterations = 8;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      n = 14;
      requests = 400;
      match_iterations = 30;
    } else {
      std::cerr << "usage: " << argv[0] << " [--quick|--full]\n";
      return 2;
    }
  }

  std::vector<std::shared_ptr<const match::workload::AnyInstance>> instances;
  for (std::size_t i = 0; i < 4; ++i) {
    match::rng::Rng rng(500 + i);
    match::workload::PaperParams params;
    params.n = n;
    instances.push_back(std::make_shared<match::workload::AnyInstance>(
        match::workload::make_paper_instance(params, rng)));
  }

  std::cout << "== Extension: service throughput vs workers (n = " << n
            << ", " << requests << " requests, MaTCH x" << match_iterations
            << " iterations, cache off) ==\n\n";

  const std::size_t worker_counts[] = {1, 2, 4};
  std::vector<BenchResult> results;
  for (std::size_t w : worker_counts) {
    results.push_back(run_batch(w, instances, requests, match_iterations));
    std::cerr << "  " << w << " worker(s) done\n";
  }

  match::io::Table table({"workers", "wall (s)", "req/s", "speedup",
                          "p50 (ms)", "p99 (ms)"});
  for (const BenchResult& r : results) {
    table.add_row({std::to_string(r.workers),
                   match::io::Table::num(r.wall_seconds, 4),
                   match::io::Table::num(r.requests_per_second, 4),
                   match::io::Table::num(r.requests_per_second /
                                             results.front().requests_per_second,
                                         3),
                   match::io::Table::num(1e3 * r.stats.p50_latency_seconds, 4),
                   match::io::Table::num(1e3 * r.stats.p99_latency_seconds, 4)});
  }
  table.print(std::cout);

  std::cout << "\n-- RunRecord CSV --\n";
  match::io::RunLog log(std::cout);
  for (const BenchResult& r : results) {
    match::io::RunRecord record;
    record.experiment = "service";
    record.heuristic = "match";
    record.instance = "throughput workers=" + std::to_string(r.workers);
    record.n = n;
    record.seed = 7;
    record.cost = r.stats.p99_latency_seconds;
    record.seconds = r.wall_seconds;
    record.iterations = match_iterations;
    record.evaluations = requests;
    log.add(record);
  }

  // Machine-readable perf point: one case per worker count, carrying
  // the widest configuration's full metrics snapshot.
  match::bench::BenchReport report;
  report.name = "ext_service_throughput";
  report.git_sha = match::bench::current_git_sha();
  report.config = {{"n", std::to_string(n)},
                   {"requests", std::to_string(requests)},
                   {"match_iterations", std::to_string(match_iterations)},
                   {"cache", "off"}};
  for (const BenchResult& r : results) {
    match::bench::BenchCase c;
    c.name = "workers=" + std::to_string(r.workers);
    c.wall_seconds = r.wall_seconds;
    c.metrics["requests_per_second"] = r.requests_per_second;
    c.metrics["p50_latency_seconds"] = r.stats.p50_latency_seconds;
    c.metrics["p99_latency_seconds"] = r.stats.p99_latency_seconds;
    c.metrics["speedup_vs_1_worker"] =
        r.requests_per_second / results.front().requests_per_second;
    report.cases.push_back(std::move(c));
  }
  report.attach_snapshot(results.back().snapshot);
  std::cout << "\nbench json: " << report.write() << "\n";

  bool monotone = true;
  for (std::size_t i = 1; i < results.size(); ++i) {
    if (results[i].requests_per_second <
        results[i - 1].requests_per_second * 0.95) {
      monotone = false;  // 5% tolerance absorbs timer noise
    }
  }
  const unsigned cores = std::thread::hardware_concurrency();
  std::cout << "\nshape-check: requests/sec scales monotonically 1 -> 4 "
               "workers: "
            << (monotone ? "yes" : "NO") << " (" << cores
            << " hardware threads)\n";
  if (!monotone && cores < 4) {
    std::cout << "note: fewer than 4 hardware threads; scaling flat/noisy "
                 "by construction, not failing the bench\n";
    return 0;
  }
  return monotone ? 0 : 1;
}
