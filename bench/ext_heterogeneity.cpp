// Extension bench: sensitivity to task-weight heterogeneity.
//
// The paper draws task weights uniformly from 1-10; real overset
// decompositions are heavy-tailed (a few huge grids).  This bench keeps
// the mean compute weight fixed and sweeps a log-normal shape parameter,
// comparing MaTCH and FastMap-GA as the tail grows.  The interesting
// question: does CE's distribution-level search degrade more or less
// gracefully than the GA's population search when a handful of tasks
// dominate the makespan?

#include <cstdio>
#include <cstring>
#include <iostream>

#include "baselines/ga.hpp"
#include "core/matchalgo.hpp"
#include "io/table.hpp"
#include "workload/paper_suite.hpp"

int main(int argc, char** argv) {
  using match::io::Table;

  std::size_t n = 20;
  std::size_t runs = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      runs = 1;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      n = 30;
      runs = 5;
    } else {
      std::fprintf(stderr, "usage: %s [--quick|--full]\n", argv[0]);
      return 2;
    }
  }

  std::cout << "== Extension: task-weight heterogeneity sweep (n = " << n
            << ", fixed mean compute weight) ==\n\n";
  Table table({"weight model", "ET MaTCH", "ET GA", "GA/MaTCH",
               "max/mean task weight"});

  bool match_holds_up = true;
  const double sigmas[] = {0.0, 0.5, 1.0, 1.5};
  for (const double sigma : sigmas) {
    double et_match = 0.0, et_ga = 0.0, tail = 0.0;
    for (std::size_t run = 0; run < runs; ++run) {
      match::rng::Rng setup(300 + run);
      match::workload::PaperParams params;
      params.n = n;
      if (sigma > 0.0) {
        params.task_weight_model =
            match::workload::PaperParams::TaskWeightModel::kLognormal;
        params.lognormal_sigma = sigma;
      }
      const auto inst = match::workload::make_paper_instance(params, setup);
      const auto plat = inst.make_platform();
      const match::sim::CostEvaluator eval(inst.tig, plat);

      double max_w = 0.0, sum_w = 0.0;
      for (match::graph::NodeId t = 0; t < n; ++t) {
        max_w = std::max(max_w, inst.tig.compute_weight(t));
        sum_w += inst.tig.compute_weight(t);
      }
      tail += max_w / (sum_w / static_cast<double>(n));

      match::rng::Rng r1(400 + run);
      et_match += match::core::MatchOptimizer(eval).run(match::SolverContext(r1)).best_cost;

      match::baselines::GaParams gp;  // paper default 500x1000
      match::rng::Rng r2(400 + run);
      et_ga += match::baselines::GaOptimizer(eval, gp).run(match::SolverContext(r2)).best_cost;
    }
    const double k = static_cast<double>(runs);
    et_match /= k;
    et_ga /= k;
    const std::string label =
        sigma == 0.0 ? "uniform 1-10 (paper)"
                     : "lognormal sigma=" + Table::num(sigma, 2);
    table.add_row({label, Table::num(et_match, 6), Table::num(et_ga, 6),
                   Table::num(et_ga / et_match, 4), Table::num(tail / k, 4)});
    match_holds_up &= et_match <= et_ga * 1.05;
    std::fprintf(stderr, "  sigma=%.1f done\n", sigma);
  }
  table.print(std::cout);

  std::cout << "\nshape-check: MaTCH stays within 5% of GA at every "
               "heterogeneity level: "
            << (match_holds_up ? "yes" : "NO") << "\n";
  return match_holds_up ? 0 : 1;
}
