// Reproduces Table 3: statistical + ANOVA analysis of ET performance of
// MaTCH, FastMap-GA 100/10000 and FastMap-GA 1000/1000, each run
// `--runs` independent times (paper: 30) on the same instance.
//
// Part A follows the paper's protocol exactly (|V| = 10).  On faithful
// reimplementations *all three* heuristics solve n = 10 to optimality on
// every run, so the groups are identical and ANOVA correctly reports
// F = 0 / p = 1 — the paper's F = 1547 is an artifact of its much weaker
// GA results (see EXPERIMENTS.md).  Part B therefore repeats the
// identical analysis at |V| = 30, where the three configurations really
// do separate, demonstrating the statistical machinery on live data.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/ga.hpp"
#include "core/matchalgo.hpp"
#include "io/table.hpp"
#include "stats/anova.hpp"
#include "stats/nonparametric.hpp"
#include "stats/descriptive.hpp"
#include "workload/paper_suite.hpp"

namespace {

using match::io::Table;

struct AnalysisOutcome {
  std::vector<match::stats::Summary> summaries;
  match::stats::AnovaResult anova;
  bool match_lowest = false;
  bool match_near_best = false;  ///< MaTCH mean within 1% of the best group
};

AnalysisOutcome run_analysis(std::size_t n, std::size_t runs,
                             const match::baselines::GaParams& ga_weak,
                             const match::baselines::GaParams& ga_strong) {
  match::rng::Rng setup(911 + n);
  match::workload::PaperParams params;
  params.n = n;
  const auto instance = match::workload::make_paper_instance(params, setup);
  const auto platform = instance.make_platform();
  const match::sim::CostEvaluator eval(instance.tig, platform);

  std::vector<std::vector<double>> groups(3);
  for (std::size_t run = 0; run < runs; ++run) {
    match::rng::Rng r1(run * 3 + 1);
    match::core::MatchOptimizer matcher(eval);
    groups[0].push_back(matcher.run(match::SolverContext(r1)).best_cost);

    match::rng::Rng r2(run * 3 + 2);
    groups[1].push_back(
        match::baselines::GaOptimizer(eval, ga_weak).run(match::SolverContext(r2)).best_cost);

    match::rng::Rng r3(run * 3 + 3);
    groups[2].push_back(
        match::baselines::GaOptimizer(eval, ga_strong).run(match::SolverContext(r3)).best_cost);
    std::fprintf(stderr,
                 "  [n=%zu] run %zu/%zu: MaTCH=%.0f GA-100/10000=%.0f "
                 "GA-1000/1000=%.0f\n",
                 n, run + 1, runs, groups[0].back(), groups[1].back(),
                 groups[2].back());
  }

  AnalysisOutcome out;
  for (const auto& g : groups) {
    out.summaries.push_back(match::stats::summarize(g));
  }
  out.anova = match::stats::one_way_anova(groups);
  out.match_lowest =
      out.summaries[0].mean <= out.summaries[1].mean + 1e-9 &&
      out.summaries[0].mean <= out.summaries[2].mean + 1e-9;
  const double best_mean =
      std::min({out.summaries[0].mean, out.summaries[1].mean,
                out.summaries[2].mean});
  out.match_near_best = out.summaries[0].mean <= 1.01 * best_mean;

  const char* names[3] = {"MaTCH", "FastMap-GA 100/10000",
                          "FastMap-GA 1000/1000"};
  Table table({"Parameter", names[0], names[1], names[2]});
  std::vector<std::string> ci_cells;
  for (const auto& g : groups) {
    if (g.size() >= 2) {
      const auto ci = match::stats::mean_confidence_interval(g, 0.95);
      ci_cells.push_back(Table::num(ci.lo, 6) + "-" + Table::num(ci.hi, 6));
    } else {
      ci_cells.push_back("-");
    }
  }
  table.add_row({"Absolute Mean of ET", Table::num(out.summaries[0].mean, 6),
                 Table::num(out.summaries[1].mean, 6),
                 Table::num(out.summaries[2].mean, 6)});
  table.add_row({"95% CI for Mean of ET", ci_cells[0], ci_cells[1],
                 ci_cells[2]});
  table.add_row({"Standard Deviation", Table::num(out.summaries[0].stddev, 4),
                 Table::num(out.summaries[1].stddev, 4),
                 Table::num(out.summaries[2].stddev, 4)});
  table.add_row({"Median", Table::num(out.summaries[0].median, 6),
                 Table::num(out.summaries[1].median, 6),
                 Table::num(out.summaries[2].median, 6)});
  table.print(std::cout);

  // Nonparametric companion: ANOVA assumes normal residuals, which ET
  // samples of randomized heuristics routinely violate; Mann-Whitney
  // makes the pairwise story robust.
  std::cout << "\n";
  Table mw_table({"pairwise (Mann-Whitney, two-sided)", "p-value",
                  "effect size P(MaTCH < other)"});
  for (int other = 1; other <= 2; ++other) {
    const auto mw = match::stats::mann_whitney_u(groups[0], groups[other]);
    mw_table.add_row({std::string("MaTCH vs ") + names[other],
                      mw.p_value < 1e-4 ? "< 0.0001" : Table::num(mw.p_value, 4),
                      Table::num(mw.effect_size, 4)});
  }
  mw_table.print(std::cout);

  std::cout << "\n";
  Table anova_table({"ANOVA parameter", "Value"});
  anova_table.add_row({"F value", Table::num(out.anova.f_value, 6)});
  anova_table.add_row({"P value (null hypothesis)",
                       out.anova.p_value < 1e-4
                           ? "< 0.0001"
                           : Table::num(out.anova.p_value, 4)});
  anova_table.add_row({"df (between, within)",
                       "(" + Table::num(out.anova.df_between, 3) + ", " +
                           Table::num(out.anova.df_within, 4) + ")"});
  anova_table.print(std::cout);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t runs = 30;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      runs = 5;
    } else if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
      runs = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--full") == 0) {
      runs = 30;  // the paper's count (also the default)
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--runs K]\n", argv[0]);
      return 2;
    }
  }
  if (runs < 2) runs = 2;

  const auto ga_weak = match::baselines::GaParams::config_100_10000();
  const auto ga_strong = match::baselines::GaParams::config_1000_1000();

  std::cout << "== Table 3 (Part A, paper protocol): ET statistics over "
               "|V| = 10, "
            << runs << " independent runs ==\n"
            << "   paper reference: MaTCH mean 3559 vs GA means 18720 / "
               "16700; F = 1547, p < 0.0001\n\n";
  const auto part_a = run_analysis(10, runs, ga_weak, ga_strong);
  std::cout << "\nnote: identical (or near-identical) groups here mean all "
               "three heuristics\n"
               "solve n = 10 to optimality; see EXPERIMENTS.md for the "
               "discussion.\n\n";

  const std::size_t runs_b = std::min<std::size_t>(runs, 15);
  std::cout << "== Table 3 (Part B, same analysis where heuristics "
               "separate): |V| = 30, "
            << runs_b << " runs ==\n\n";
  const auto part_b = run_analysis(30, runs_b, ga_weak, ga_strong);

  // At n = 10 every faithful implementation solves the instance; the
  // honest criterion is a tie (within 1% of the best group), not a win.
  const bool a_ok = part_a.match_near_best;
  const bool b_ok = part_b.match_lowest && part_b.anova.p_value < 0.05;
  std::cout << "\nshape-check: MaTCH mean within 1% of best group at n=10: "
            << (a_ok ? "yes" : "NO") << "\n";
  std::cout << "shape-check: at n=30 MaTCH lowest and ANOVA significant "
               "(p < 0.05): "
            << (b_ok ? "yes" : "NO") << "\n";
  return (a_ok && b_ok) ? 0 : 1;
}
