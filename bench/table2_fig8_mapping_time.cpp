// Reproduces Table 2 and Figure 8: mapping time (MT) — the wall-clock
// time of the mapping algorithms themselves — for FastMap-GA vs MaTCH
// over |V| = 10..50.
//
// The paper's shape: GA's MT grows slowly (fixed population x fixed
// generations; per-generation cost rises only with the evaluation cost),
// while MaTCH's MT rises sharply because its per-iteration sample count
// is N = 2n^2 and each GenPerm draw is O(n^2).  Absolute seconds are
// hardware-specific (the paper used a Pentium III).

#include <cstdio>
#include <iostream>

#include "io/ascii_chart.hpp"
#include "io/table.hpp"
#include "sweep.hpp"

int main(int argc, char** argv) {
  using match::io::Table;
  const auto protocol = match::bench::SweepProtocol::from_args(argc, argv);

  std::fprintf(stderr, "table2_fig8: MT sweep\n");
  const auto rows = match::bench::run_sweep(protocol);

  std::cout << "== Table 2: Comparison of the Mapping times between "
               "FastMap-GA and MaTCH ==\n\n";
  Table table({"|Vr|=|Vt|", "MT_GA s (measured)", "MT_MaTCH s (measured)",
               "MT_MaTCH/MT_GA (measured)", "MT_MaTCH/MT_GA (paper)"});
  for (const auto& row : rows) {
    std::string paper_ratio = "-";
    for (const auto& ref : match::bench::paper_reference()) {
      if (ref.n == row.n) paper_ratio = Table::num(ref.mt_ratio, 4);
    }
    table.add_row({std::to_string(row.n), Table::num(row.mt_ga, 4),
                   Table::num(row.mt_match, 4), Table::num(row.mt_ratio, 4),
                   paper_ratio});
  }
  table.print(std::cout);

  std::cout << "\n== Figure 8: Mapping Time in seconds for FastMap-GA and "
               "MaTCH ==\n";
  std::vector<std::string> labels;
  std::vector<double> ga_series, match_series;
  for (const auto& row : rows) {
    labels.push_back(std::to_string(row.n));
    ga_series.push_back(row.mt_ga);
    match_series.push_back(row.mt_match);
  }
  match::io::AsciiChart chart("MT vs number of resources", labels);
  chart.set_log_y(true);
  chart.add_series({"FastMap-GA", ga_series, 'g'});
  chart.add_series({"MaTCH", match_series, 'm'});
  chart.print(std::cout);

  // Shape: MaTCH's MT must grow faster than GA's across the sweep.
  bool shape_ok = true;
  if (rows.size() >= 2) {
    const double match_growth =
        rows.back().mt_match / std::max(rows.front().mt_match, 1e-12);
    const double ga_growth =
        rows.back().mt_ga / std::max(rows.front().mt_ga, 1e-12);
    shape_ok = match_growth > ga_growth;
    std::cout << "shape-check: MT growth factor MaTCH "
              << Table::num(match_growth, 4) << "x vs GA "
              << Table::num(ga_growth, 4)
              << "x -> MaTCH grows faster: " << (shape_ok ? "yes" : "NO")
              << "\n";
  }
  return shape_ok ? 0 : 1;
}
