// Microbenchmark for the DAG schedule-evaluation hot path: lane-parallel
// assignment-mode makespans (scalar vs every compiled-in SIMD backend)
// and the scalar-lane priority-mode batch, across the three DAG families
// at n = 128/256/512 on one core.  Writes BENCH_dag_perf.json so CI
// accumulates a perf trajectory next to BENCH_perf.json / BENCH_dag.json.
//
//   --quick   shorter timing windows and no n = 512 (CI default)
//   --full    longer windows (quieter numbers)
//
// The headline metric is assignment-mode `speedup_vs_scalar` at n = 256:
// the same SampleBlock evaluated by `makespans_batch` with the backend
// pinned to kScalar vs each available SIMD tier, best window over the
// three families.  Because the kernels are bit-identical to the scalar
// path, every window also cross-checks the SIMD outputs lane for lane
// against the scalar reference — a mismatch fails the run immediately.
//
// Exit status: non-zero if any backend mismatches the scalar reference,
// or if AVX2 is available but its best assignment-mode speedup at
// n = 256 lands under the 1.8× floor — that floor is far enough below
// the typical ratio (the SIMD path drops the per-lane `load_sample`
// gather and walks one linear predecessor stream) that shared CI
// machines do not flake it, while still catching a regression that
// silently falls back to scalar-per-lane work.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "graph/dag.hpp"
#include "io/table.hpp"
#include "obs/bench_report.hpp"
#include "parallel/parallel_for.hpp"
#include "rng/rng.hpp"
#include "sim/batch_eval.hpp"
#include "sim/schedule_eval.hpp"
#include "workload/dag_suite.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

match::parallel::ForOptions serial_opts() {
  match::parallel::ForOptions serial;
  serial.serial_cutoff = std::numeric_limits<std::size_t>::max();
  return serial;
}

// One timed window of assignment-mode batch evaluation, parallelism
// forced off so samples/s IS samples/s/core.  The caller runs each
// backend's windows back to back (not interleaved) for the same
// AVX-512 frequency-license reason as micro_genperm's batch section.
double assign_window_rate(const match::sim::ScheduleEvaluator& eval,
                          const match::sim::SampleBlock& block,
                          std::span<double> out, double window_seconds) {
  const auto serial = serial_opts();
  eval.makespans_batch(block, out, serial);  // warm scratch + caches
  std::size_t reps = 0;
  double wall = 0.0;
  const auto t0 = Clock::now();
  do {
    eval.makespans_batch(block, out, serial);
    ++reps;
    wall = seconds_since(t0);
  } while (wall < window_seconds);
  return static_cast<double>(reps * block.size()) / std::max(wall, 1e-12);
}

double priority_window_rate(const match::sim::ScheduleEvaluator& eval,
                            const match::sim::SampleBlock& block,
                            std::span<double> out, double window_seconds) {
  const auto serial = serial_opts();
  eval.priority_makespans_batch(block, out, serial);
  std::size_t reps = 0;
  double wall = 0.0;
  const auto t0 = Clock::now();
  do {
    eval.priority_makespans_batch(block, out, serial);
    ++reps;
    wall = seconds_since(t0);
  } while (wall < window_seconds);
  return static_cast<double>(reps * block.size()) / std::max(wall, 1e-12);
}

const match::workload::DagFamily kFamilies[] = {
    match::workload::DagFamily::kLayered,
    match::workload::DagFamily::kForkJoin,
    match::workload::DagFamily::kSeriesParallel,
};

}  // namespace

int main(int argc, char** argv) {
  using match::io::Table;
  using match::sim::EvalBackend;

  bool full = false, quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") full = true;
    if (arg == "--quick") quick = true;
  }
  std::vector<std::size_t> sizes = {128, 256};
  if (!quick) sizes.push_back(512);
  const double window = full ? 0.5 : (quick ? 0.12 : 0.3);
  const int trials = 3;

  match::bench::BenchReport report;
  report.name = "dag_perf";
  report.git_sha = match::bench::current_git_sha();
  report.config["mode"] = full ? "full" : (quick ? "quick" : "default");
  report.config["window_seconds"] = std::to_string(window);

  // Every backend the build + CPU can serve, scalar first as reference.
  std::vector<EvalBackend> backends = {EvalBackend::kScalar};
  for (const EvalBackend b :
       {EvalBackend::kAvx2, EvalBackend::kAvx512, EvalBackend::kNeon}) {
    if (match::sim::eval_backend_available(b)) backends.push_back(b);
  }
  report.config["backends"] = [&backends] {
    std::string s;
    for (const EvalBackend b : backends) {
      if (!s.empty()) s += ",";
      s += match::sim::to_string(b);
    }
    return s;
  }();

  bool mismatch = false;
  // Best assignment-mode speedup per backend at each n, over families —
  // backend name → (n → best speedup).
  std::vector<std::vector<double>> best_speedup(
      backends.size(), std::vector<double>(sizes.size(), 0.0));

  std::cout << "== DAG schedule evaluation, one core (nr=8, 2n samples) ==\n";
  Table table({"family", "n", "mode", "backend", "samples/s",
               "speedup_vs_scalar"});
  for (const match::workload::DagFamily family : kFamilies) {
    const char* fname = match::workload::dag_family_name(family);
    for (std::size_t si = 0; si < sizes.size(); ++si) {
      const std::size_t n = sizes[si];
      std::fprintf(stderr, "micro_schedule_eval: %s n=%zu\n", fname, n);
      match::rng::Rng setup(42);
      match::workload::DagSuiteParams wp;
      wp.tasks = n;
      wp.resources = 8;
      // Keep layer width roughly constant as n grows; the default 5
      // layers at n = 512 would make an untypically flat DAG.
      wp.layers = std::max<std::size_t>(5, n / 32);
      const match::workload::DagInstance inst =
          match::workload::make_dag_instance(family, wp, setup);
      const match::sim::Platform platform = inst.make_platform();
      const std::size_t nr = platform.num_resources();
      const std::size_t count = 2 * n;

      // Assignment-mode block: uniform random placements.
      match::sim::SampleBlock assign_block(n, count);
      std::vector<match::graph::NodeId> row(n);
      for (std::size_t i = 0; i < count; ++i) {
        for (std::size_t t = 0; t < n; ++t) {
          row[t] = static_cast<match::graph::NodeId>(setup.below(nr));
        }
        assign_block.store_sample(i, row);
      }
      // Priority-mode block: random permutations.
      match::sim::SampleBlock prio_block(n, count);
      std::iota(row.begin(), row.end(), match::graph::NodeId{0});
      for (std::size_t i = 0; i < count; ++i) {
        setup.shuffle(std::span<match::graph::NodeId>(row));
        prio_block.store_sample(i, row);
      }

      std::vector<double> out(count);
      std::vector<double> ref(count);
      double scalar_rate = 0.0;
      for (std::size_t bi = 0; bi < backends.size(); ++bi) {
        const match::sim::ScheduleEvaluator eval(inst.dag, platform,
                                                 backends[bi]);
        double rate = 0.0;
        for (int trial = 0; trial < trials; ++trial) {
          rate = std::max(rate, assign_window_rate(eval, assign_block,
                                                   out, window));
        }
        if (bi == 0) {
          scalar_rate = rate;
          ref = out;
        } else if (out != ref) {
          // Integer workload: the SIMD kernels must reproduce the
          // scalar makespans bit for bit, lane for lane.
          std::cout << "MISMATCH: " << eval.backend_name()
                    << " diverges from scalar on " << fname
                    << " n=" << n << "\n";
          mismatch = true;
        }
        const double speedup =
            bi == 0 ? 1.0 : rate / std::max(scalar_rate, 1e-12);
        best_speedup[bi][si] = std::max(best_speedup[bi][si], speedup);

        match::bench::BenchCase bc;
        bc.name = std::string("assign/") + eval.backend_name() + "/" +
                  fname + "/n=" + std::to_string(n);
        bc.metrics["samples_per_sec"] = rate;
        bc.metrics["samples_per_sec_per_core"] = rate;
        if (bi != 0) bc.metrics["speedup_vs_scalar"] = speedup;
        report.cases.push_back(bc);
        table.add_row({fname, std::to_string(n), "assign",
                       eval.backend_name(), Table::num(rate, 1),
                       bi == 0 ? "-" : Table::num(speedup, 2)});
      }

      // Priority mode keeps scalar lanes regardless of backend (the
      // insertion-EFT gap scan resists vectorization), so one timing
      // covers every backend.
      const match::sim::ScheduleEvaluator eval(inst.dag, platform,
                                               EvalBackend::kScalar);
      double prio_rate = 0.0;
      for (int trial = 0; trial < trials; ++trial) {
        prio_rate = std::max(
            prio_rate, priority_window_rate(eval, prio_block, out, window));
      }
      match::bench::BenchCase pc;
      pc.name = std::string("priority/scalar/") + fname +
                "/n=" + std::to_string(n);
      pc.metrics["samples_per_sec"] = prio_rate;
      pc.metrics["samples_per_sec_per_core"] = prio_rate;
      report.cases.push_back(pc);
      table.add_row({fname, std::to_string(n), "priority", "scalar",
                     Table::num(prio_rate, 1), "-"});
    }
  }
  table.print(std::cout);

  // Headline + gate: best assignment-mode speedup per SIMD backend at
  // each n (best over families — the floor checks "the SIMD path is
  // engaged", not a per-family microarchitecture claim).
  bool gate_failed = false;
  for (std::size_t bi = 1; bi < backends.size(); ++bi) {
    for (std::size_t si = 0; si < sizes.size(); ++si) {
      const std::string key = std::string("speedup_") +
                              match::sim::to_string(backends[bi]) +
                              "_vs_scalar_n" + std::to_string(sizes[si]);
      report.config[key] = match::io::Table::num(best_speedup[bi][si], 3);
      std::cout << key << ": " << Table::num(best_speedup[bi][si], 2) << "\n";
      if (backends[bi] == EvalBackend::kAvx2 && sizes[si] == 256 &&
          best_speedup[bi][si] < 1.8) {
        std::cout << "GATE FAILED: avx2 assignment-mode speedup at n=256 is "
                  << Table::num(best_speedup[bi][si], 2) << " < 1.80\n";
        gate_failed = true;
      }
    }
  }

  const std::string path = report.write();
  std::cout << "report: " << path << "\n";
  return (mismatch || gate_failed) ? 1 : 0;
}
