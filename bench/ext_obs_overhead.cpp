// Extension bench: telemetry overhead of the obs subsystem on the
// paper's fig. 7 workloads.  Runs identical MatchOptimizer solves under
// four arms — no observer (disarmed probe, fused sampling loop), a
// NullSink + metrics registry, a JsonlSink streaming every event to a
// file, and a span flight recorder stamping a per-solve SpanTimeline —
// and reports the wall-clock overhead of each instrumented arm against
// the uninstrumented baseline.
//
// Acceptance: the JSONL arm stays within a 2% budget of the NullSink
// arm (serialization + file I/O is the marginal cost of tracing), the
// spans arm within 2% of the uninstrumented baseline (the per-request
// stamp/finalize/record pattern the network server performs), and all
// arms produce bit-identical best costs (attaching telemetry must not
// perturb the RNG stream).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <vector>

#include "obs/bench_report.hpp"
#include "core/matchalgo.hpp"
#include "core/solver_context.hpp"
#include "io/table.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/spans.hpp"
#include "workload/paper_suite.hpp"

namespace {

struct Arm {
  const char* name;
  std::function<match::SolverContext()> make_ctx;
  /// Non-null: wrap every solve in the per-request span pattern the
  /// network server performs (start → stamp → finalize → record).
  match::obs::FlightRecorder* recorder = nullptr;
  std::vector<double> trial_seconds;
  std::vector<double> costs;  ///< best cost per rep (first trial)

  /// Fastest trial: the standard noise-robust benchmark estimator — any
  /// slower trial ate a load spike, not solver work.
  double best_seconds() const {
    return *std::min_element(trial_seconds.begin(), trial_seconds.end());
  }
};

/// One timed trial of `reps` solves.  Rep r always uses seed 100 + r, so
/// every arm performs the same work.
void run_trial(Arm& arm, const match::sim::CostEvaluator& eval,
               const match::core::MatchParams& params, std::size_t reps) {
  const bool first_trial = arm.trial_seconds.empty();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t rep = 0; rep < reps; ++rep) {
    match::core::MatchOptimizer opt(eval, params);
    match::rng::Rng rng(100 + rep);
    match::SolverContext ctx = arm.make_ctx();
    ctx.with_rng(rng).with_run_id(rep + 1);
    if (arm.recorder != nullptr) {
      // The traced-request hot path: one timeline per solve, stamped
      // from timestamps the caller takes anyway, sealed into the
      // recorder.  No sink, no metrics — isolates the span cost.
      match::obs::SpanTimeline tl;
      const auto started = match::obs::SpanClock::now();
      tl.start(rep + 1, started);
      ctx.with_span(&tl);
      const auto r = opt.run(ctx);
      const auto done = match::obs::SpanClock::now();
      tl.stamp(match::obs::SpanStage::kSolve, started, done, "solver");
      tl.finalize("net.served", done);
      arm.recorder->record(std::move(tl));
      if (first_trial) arm.costs.push_back(r.best_cost);
    } else {
      const auto r = opt.run(ctx);
      if (first_trial) arm.costs.push_back(r.best_cost);
    }
  }
  arm.trial_seconds.push_back(std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count());
}

}  // namespace

int main(int argc, char** argv) {
  using match::io::Table;

  std::size_t n = 30;
  std::size_t reps = 8;
  std::size_t trials = 7;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      n = 20;
      reps = 6;
      trials = 9;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      n = 40;
      reps = 10;
      trials = 9;
    } else {
      std::fprintf(stderr, "usage: %s [--quick|--full]\n", argv[0]);
      return 2;
    }
  }

  match::rng::Rng setup(5150);
  match::workload::PaperParams params;
  params.n = n;
  const auto inst = match::workload::make_paper_instance(params, setup);
  const auto platform = inst.make_platform();
  const match::sim::CostEvaluator eval(inst.tig, platform);

  match::core::MatchParams mp;
  mp.max_iterations = 60;

  std::cout << "== Extension: telemetry overhead on a fig. 7 workload (n = "
            << n << ", " << reps << " solves x " << trials
            << " trials per arm) ==\n\n";

  // Untimed warm-up: spins up the thread pool and faults in the code and
  // data caches, so the first timed arm is not charged the cold start.
  for (std::size_t rep = 0; rep < 2; ++rep) {
    match::core::MatchOptimizer opt(eval, mp);
    match::rng::Rng rng(100 + rep);
    opt.run(match::SolverContext(rng));
  }

  // Arm 1: no observer — the phase probe is disarmed; the optimizer
  // keeps the fused draw+cost loop and never reads the clock.
  // Arm 2: NullSink + metrics — every event is built and every phase is
  // timed, then discarded; isolates instrumentation cost from I/O.
  // Arm 3: JsonlSink streaming to a file — the realistic tracing setup.
  // Arm 4: span flight recorder — no sink, no metrics; each solve is
  // wrapped in the start/stamp/finalize/record pattern MatchServer
  // performs per traced request.
  match::obs::NullSink null_sink;
  match::obs::MetricsRegistry null_metrics;
  const char* trace_path = "ext_obs_overhead.trace.jsonl";
  std::ofstream trace_file(trace_path);
  match::obs::JsonlSink jsonl(trace_file);
  match::obs::MetricsRegistry jsonl_metrics;
  match::obs::FlightRecorder recorder;

  Arm arms[4] = {
      {"no observer", [] { return match::SolverContext(); }, nullptr, {}, {}},
      {"NullSink + metrics",
       [&] {
         match::SolverContext ctx;
         ctx.with_sink(&null_sink).with_metrics(&null_metrics);
         return ctx;
       },
       nullptr,
       {},
       {}},
      {"JsonlSink (file)",
       [&] {
         match::SolverContext ctx;
         ctx.with_sink(&jsonl).with_metrics(&jsonl_metrics);
         return ctx;
       },
       nullptr,
       {},
       {}},
      {"spans (flight recorder)", [] { return match::SolverContext(); },
       &recorder, {}, {}},
  };

  // Trials interleave round-robin across the arms so slow drift in the
  // machine (thermal, co-tenants) lands on every arm equally.
  for (std::size_t trial = 0; trial < trials; ++trial) {
    for (Arm& arm : arms) run_trial(arm, eval, mp, reps);
  }
  trace_file.flush();

  const Arm& base = arms[0];
  const auto overhead_pct = [](const Arm& arm, const Arm& ref) {
    return 100.0 * (arm.best_seconds() - ref.best_seconds()) /
           ref.best_seconds();
  };

  Table table({"arm", "best time (s)", "overhead vs no observer"});
  table.add_row({base.name, Table::num(base.best_seconds(), 4), "-"});
  for (std::size_t a = 1; a < 4; ++a) {
    table.add_row({arms[a].name, Table::num(arms[a].best_seconds(), 4),
                   Table::num(overhead_pct(arms[a], base), 2) + "%"});
  }
  table.print(std::cout);
  std::cout << "\ntraced " << jsonl.emitted() << " events to " << trace_path
            << "\nrecorded " << recorder.recorded()
            << " span timelines in the flight recorder\n";

  // Telemetry must be a pure observer: identical costs across all arms.
  const bool identical = base.costs == arms[1].costs &&
                         base.costs == arms[2].costs &&
                         base.costs == arms[3].costs;
  std::cout << "determinism: best costs identical across all arms: "
            << (identical ? "yes" : "NO") << "\n";

  // The budgeted comparison: JSONL vs NullSink — both arms build and
  // time every event, so the delta is the pure cost of serializing and
  // writing the trace.
  const double jsonl_over = overhead_pct(arms[2], arms[1]);
  const bool under_budget = jsonl_over < 2.0;
  std::cout << "overhead budget: JSONL vs null sink " << Table::num(jsonl_over, 2)
            << "% < 2%: " << (under_budget ? "yes" : "NO") << "\n";

  // Span tracing is budgeted against the *uninstrumented* baseline:
  // unlike the event arms it adds nothing inside the solver loop, only
  // per-request stamps around it, so the whole cost must be marginal.
  const double spans_over = overhead_pct(arms[3], base);
  const bool spans_under_budget = spans_over < 2.0;
  std::cout << "overhead budget: spans vs no observer "
            << Table::num(spans_over, 2)
            << "% < 2%: " << (spans_under_budget ? "yes" : "NO") << "\n";

  // Machine-readable perf point: the four arms plus the JSONL arm's
  // solver metrics snapshot, appended to the repo's BENCH_* trajectory.
  match::bench::BenchReport report;
  report.name = "ext_obs_overhead";
  report.git_sha = match::bench::current_git_sha();
  report.config = {{"n", std::to_string(n)},
                   {"reps", std::to_string(reps)},
                   {"trials", std::to_string(trials)},
                   {"match_iterations", std::to_string(mp.max_iterations)}};
  for (const Arm& arm : arms) {
    match::bench::BenchCase c;
    c.name = arm.name;
    c.wall_seconds = arm.best_seconds();
    c.metrics["overhead_vs_baseline_pct"] = overhead_pct(arm, base);
    report.cases.push_back(std::move(c));
  }
  report.cases[2].metrics["jsonl_vs_null_pct"] = jsonl_over;
  report.cases[2].metrics["events_traced"] =
      static_cast<double>(jsonl.emitted());
  report.cases.back().metrics["spans_vs_baseline_pct"] = spans_over;
  report.cases.back().metrics["timelines_recorded"] =
      static_cast<double>(recorder.recorded());
  report.attach_snapshot(jsonl_metrics.snapshot());
  std::cout << "bench json: " << report.write() << "\n";

  std::remove(trace_path);
  return (identical && under_budget && spans_under_budget) ? 0 : 1;
}
