// Extension bench: the generic CE framework of the paper's §3 applied to
// max-cut, Rubinstein's original CE showcase.  Demonstrates that the
// library's CE core is problem-agnostic, and sanity-checks quality
// against (a) the exact optimum on small graphs and (b) random sampling
// on larger ones.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "core/ce_driver.hpp"
#include "core/maxcut.hpp"
#include "graph/generators.hpp"
#include "io/table.hpp"

int main(int argc, char** argv) {
  using match::io::Table;

  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      // default
    } else {
      std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
      return 2;
    }
  }

  std::cout << "== Extension: cross-entropy max-cut (generic CE driver) ==\n\n";

  // Part 1: exact-optimum recovery on small graphs.
  Table exact({"graph", "nodes", "edges", "CE cut", "optimal cut", "found"});
  bool all_exact = true;
  {
    match::rng::Rng graph_rng(31);
    const std::size_t trials = quick ? 2 : 5;
    for (std::size_t t = 0; t < trials; ++t) {
      const auto g =
          match::graph::make_gnp(14, 0.4, {1, 1}, {1, 9}, graph_rng);
      const double optimum = match::core::MaxCutProblem::brute_force_max_cut(g);

      // Best of three independent CE restarts — the standard way to run a
      // randomized heuristic when exact recovery is the goal.
      double ce_cut = 0.0;
      for (std::uint64_t restart = 0; restart < 3; ++restart) {
        match::core::MaxCutProblem problem(g);
        match::core::CeDriverParams params;
        params.sample_size = 400;
        match::rng::Rng rng(100 + 17 * t + restart);
        const auto r = match::core::run_ce(problem, params, match::SolverContext(rng));
        ce_cut = std::max(ce_cut, -r.best_cost);
      }
      const bool found = std::abs(ce_cut - optimum) < 1e-9;
      all_exact &= found;
      exact.add_row({"gnp-14-" + std::to_string(t), "14",
                     std::to_string(g.num_edges()), Table::num(ce_cut, 6),
                     Table::num(optimum, 6), found ? "yes" : "NO"});
    }
  }
  exact.print(std::cout);

  // Part 2: larger graphs, CE vs uniform random sampling at equal budget.
  std::cout << "\n-- larger graphs: CE vs random sampling (equal sample "
               "budget) --\n";
  Table large({"graph", "nodes", "CE cut", "random-best cut", "CE/random"});
  bool ce_wins = true;
  {
    match::rng::Rng graph_rng(32);
    const std::size_t sizes[] = {40, 80};
    for (const std::size_t n : sizes) {
      const auto g = match::graph::make_gnp(n, 0.2, {1, 1}, {1, 9}, graph_rng);

      match::core::MaxCutProblem problem(g);
      match::core::CeDriverParams params;
      params.sample_size = quick ? 200 : 500;
      params.max_iterations = quick ? 60 : 200;
      match::rng::Rng rng(7);
      const auto r = match::core::run_ce(problem, params, match::SolverContext(rng));
      const double ce_cut = -r.best_cost;
      const std::size_t ce_budget = r.iterations * params.sample_size;

      match::core::MaxCutProblem sampler(g);
      match::rng::Rng rrng(7);
      double random_best = 0.0;
      for (std::size_t k = 0; k < ce_budget; ++k) {
        random_best =
            std::max(random_best, sampler.cut_weight(sampler.draw(rrng)));
      }
      ce_wins &= ce_cut >= random_best;
      large.add_row({"gnp-" + std::to_string(n), std::to_string(n),
                     Table::num(ce_cut, 6), Table::num(random_best, 6),
                     Table::num(ce_cut / random_best, 4)});
    }
  }
  large.print(std::cout);

  std::cout << "\nshape-check: CE recovers every small-graph optimum: "
            << (all_exact ? "yes" : "NO") << "\n";
  std::cout << "shape-check: CE beats equal-budget random sampling: "
            << (ce_wins ? "yes" : "NO") << "\n";
  return (all_exact && ce_wins) ? 0 : 1;
}
