// Google-benchmark microbenches for the library's hot paths: cost
// evaluation, batch evaluation (serial vs thread pool), GenPerm sampling,
// incremental LoadTracker moves, and one full MaTCH iteration equivalent.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/genperm.hpp"
#include "core/stochastic_matrix.hpp"
#include "sim/evaluator.hpp"
#include "workload/paper_suite.hpp"

namespace {

using match::graph::NodeId;

struct BenchFixture {
  match::workload::Instance instance;
  match::sim::Platform platform;
  match::sim::CostEvaluator eval;

  explicit BenchFixture(std::size_t n)
      : instance(make(n)),
        platform(instance.make_platform()),
        eval(instance.tig, platform) {}

  static match::workload::Instance make(std::size_t n) {
    match::rng::Rng rng(1234);
    match::workload::PaperParams params;
    params.n = n;
    return match::workload::make_paper_instance(params, rng);
  }
};

void BM_MakespanEval(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  BenchFixture f(n);
  match::rng::Rng rng(1);
  const auto m = match::sim::Mapping::random_permutation(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.eval.makespan(m));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MakespanEval)->Arg(10)->Arg(20)->Arg(50)->Arg(100);

void BM_BatchEvalSerial(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kBatch = 512;
  BenchFixture f(n);
  match::rng::Rng rng(2);
  std::vector<NodeId> rows(kBatch * n);
  for (std::size_t i = 0; i < kBatch; ++i) {
    const auto m = match::sim::Mapping::random_permutation(n, rng);
    std::copy(m.assignment().begin(), m.assignment().end(),
              rows.begin() + static_cast<std::ptrdiff_t>(i * n));
  }
  std::vector<double> out(kBatch);
  match::parallel::ForOptions opts;
  opts.serial_cutoff = kBatch + 1;  // force serial
  for (auto _ : state) {
    f.eval.makespans_batch(rows, kBatch, out, opts);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kBatch));
}
BENCHMARK(BM_BatchEvalSerial)->Arg(20)->Arg(50);

void BM_BatchEvalParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kBatch = 512;
  BenchFixture f(n);
  match::rng::Rng rng(2);
  std::vector<NodeId> rows(kBatch * n);
  for (std::size_t i = 0; i < kBatch; ++i) {
    const auto m = match::sim::Mapping::random_permutation(n, rng);
    std::copy(m.assignment().begin(), m.assignment().end(),
              rows.begin() + static_cast<std::ptrdiff_t>(i * n));
  }
  std::vector<double> out(kBatch);
  match::parallel::ForOptions opts;
  opts.serial_cutoff = 1;
  opts.grain = 16;
  for (auto _ : state) {
    f.eval.makespans_batch(rows, kBatch, out, opts);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kBatch));
}
BENCHMARK(BM_BatchEvalParallel)->Arg(20)->Arg(50);


void BM_BatchEvalOpenMP(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kBatch = 512;
  BenchFixture f(n);
  match::rng::Rng rng(2);
  std::vector<NodeId> rows(kBatch * n);
  for (std::size_t i = 0; i < kBatch; ++i) {
    const auto m = match::sim::Mapping::random_permutation(n, rng);
    std::copy(m.assignment().begin(), m.assignment().end(),
              rows.begin() + static_cast<std::ptrdiff_t>(i * n));
  }
  std::vector<double> out(kBatch);
  match::parallel::ForOptions opts;
  opts.serial_cutoff = 1;
  opts.grain = 16;
  opts.prefer_openmp = true;
  for (auto _ : state) {
    f.eval.makespans_batch(rows, kBatch, out, opts);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kBatch));
}
BENCHMARK(BM_BatchEvalOpenMP)->Arg(20)->Arg(50);

void BM_GenPermSample(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  match::core::GenPermSampler sampler(n);
  const auto p = match::core::StochasticMatrix::uniform(n, n);
  match::rng::Rng rng(3);
  std::vector<NodeId> out(n);
  for (auto _ : state) {
    sampler.sample(p, rng, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_GenPermSample)->Arg(10)->Arg(50)->Arg(100);

void BM_LoadTrackerMove(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  BenchFixture f(n);
  match::rng::Rng rng(4);
  match::sim::LoadTracker tracker(
      f.eval, match::sim::Mapping::random_permutation(n, rng));
  std::size_t step = 0;
  for (auto _ : state) {
    const auto t = static_cast<NodeId>(step % n);
    const auto r = static_cast<NodeId>((step * 7 + 1) % n);
    tracker.apply_move(t, r);
    benchmark::DoNotOptimize(tracker.loads().data());
    ++step;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_LoadTrackerMove)->Arg(20)->Arg(50);

void BM_FullEvalVsIncremental(benchmark::State& state) {
  // Cost of re-evaluating from scratch, for comparison with
  // BM_LoadTrackerMove at the same size.
  const auto n = static_cast<std::size_t>(state.range(0));
  BenchFixture f(n);
  match::rng::Rng rng(5);
  auto m = match::sim::Mapping::random_permutation(n, rng);
  std::size_t step = 0;
  for (auto _ : state) {
    m.set(static_cast<NodeId>(step % n), static_cast<NodeId>((step * 7 + 1) % n));
    benchmark::DoNotOptimize(f.eval.makespan(m));
    ++step;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FullEvalVsIncremental)->Arg(20)->Arg(50);

}  // namespace

BENCHMARK_MAIN();
