#pragma once

// Shared machinery for the paper-reproduction benches: the §5 protocol
// runs MaTCH and FastMap-GA on the same synthetic instances over
// |V| = 10..50, averaging over instances and independent runs.  Tables 1
// and 2 and Figures 7-9 are different projections of this one sweep.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "baselines/ga.hpp"
#include "core/matchalgo.hpp"

namespace match::bench {

/// Experimental protocol of the §5.2 sweep.
struct SweepProtocol {
  std::vector<std::size_t> sizes = {10, 20, 30, 40, 50};
  /// The paper generates five graphs per setting and averages five runs.
  std::size_t instances_per_size = 5;
  std::size_t runs_per_instance = 5;
  std::uint64_t base_seed = 20050404;  // IPDPS 2005 :-)

  baselines::GaParams ga = baselines::GaParams::paper_default();
  core::MatchParams match_params = {};

  /// When non-empty, every individual run is appended to this CSV file
  /// as an io::RunRecord row (for offline analysis).
  std::string csv_path;

  /// Parses --quick / --full / --sizes a,b,c / --instances k / --runs k /
  /// --csv path.  Unknown flags abort with a usage message.  Defaults:
  /// the reduced protocol (3 instances x 3 runs) so
  /// `for b in bench/*; do $b; done` stays snappy; --full restores the
  /// paper's 5 x 5.
  static SweepProtocol from_args(int argc, char** argv);
};

/// Aggregated measurements for one problem size.
struct SweepRow {
  std::size_t n = 0;
  double et_ga = 0.0;     ///< mean application execution time, FastMap-GA
  double et_match = 0.0;  ///< mean application execution time, MaTCH
  double mt_ga = 0.0;     ///< mean mapping (algorithm wall-clock) time, s
  double mt_match = 0.0;
  double et_ratio = 0.0;  ///< et_ga / et_match (paper Table 1 last row)
  double mt_ratio = 0.0;  ///< mt_match / mt_ga (paper Table 2 last row)
  std::size_t samples = 0;  ///< instances x runs aggregated
};

/// Runs the sweep; one row per size.  Progress notes go to stderr so
/// stdout stays a clean table.
std::vector<SweepRow> run_sweep(const SweepProtocol& protocol);

/// Paper reference values (Tables 1 and 2) for side-by-side printing.
struct PaperReference {
  std::size_t n;
  double et_ga, et_match, et_ratio;
  double mt_ga, mt_match, mt_ratio;
};
const std::vector<PaperReference>& paper_reference();

}  // namespace match::bench
