// Mapping-as-a-service demo: drives service::MappingService with a
// synthetic open-loop arrival trace (workload::make_poisson_arrivals) and
// audits the service's deadline accounting, then reruns the identical
// trace against the warm cache and verifies hit rate and byte-identical
// mappings.
//
// Exit status 0 iff:
//  * every response carries a valid permutation mapping;
//  * every response either met its deadline or is flagged
//    `deadline_missed` and counted in ServiceStats (no violation is
//    unaccounted);
//  * the warm-cache rerun's hit rate exceeds 50% and every cache-served
//    response is byte-identical to the first run's mapping;
//  * the traced γ sequence of one audited solver run reconstructs the
//    optimizer's `history` exactly (events are a faithful transcript).
//
// `--trace out.jsonl` additionally streams every service/solver event
// to the given file as JSON lines (obs::JsonlSink); feed it to
// `match_inspect summary` for a convergence report.
//
// `--metrics-port N` serves the service's metrics registry as
// Prometheus text exposition on `127.0.0.1:N/metrics` (plus
// `/healthz`) for the life of the process — scrape it mid-run, or pass
// `--linger S` to keep the exporter up S seconds after the audit
// finishes (N = 0 binds an ephemeral port, printed at startup).
//
// `--listen PORT` switches the binary from audit mode into a network
// server: it starts the net::MatchServer reactor on 127.0.0.1:PORT
// (0 = ephemeral, printed as `listening on 127.0.0.1:<port>`) and
// serves the binary wire protocol (docs/NETWORKING.md) until SIGINT/
// SIGTERM or `--serve-seconds S` elapses.  `bench/ext_net_loadgen` is
// the matching client.  Listen mode always runs a span flight recorder
// (obs/spans.hpp): the last-N plus all-slow request timelines are
// dumpable at `/debug/requests` on the metrics exporter, and
// `--span-trace out.jsonl` streams every sealed timeline to a JSONL
// file for `match_inspect spans`.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "core/matchalgo.hpp"
#include "core/solver_context.hpp"
#include "io/table.hpp"
#include "net/server.hpp"
#include "obs/events.hpp"
#include "obs/http_exposer.hpp"
#include "obs/prometheus.hpp"
#include "obs/spans.hpp"
#include "service/service.hpp"
#include "sim/evaluator.hpp"
#include "sim/platform.hpp"
#include "workload/paper_suite.hpp"
#include "workload/trace.hpp"

namespace {

using match::service::MapRequest;
using match::service::MapResponse;
using match::service::MappingService;
using match::service::ServedBy;
using match::service::ServiceStats;
using match::service::SolverKind;

struct RequestTemplate {
  std::shared_ptr<const match::workload::AnyInstance> instance;
  SolverKind solver = SolverKind::kMatch;
  match::service::SolveOptions options;
};

std::vector<RequestTemplate> make_templates(std::size_t num_instances) {
  std::vector<RequestTemplate> templates;
  for (std::size_t i = 0; i < num_instances; ++i) {
    match::rng::Rng rng(1000 + i);
    match::workload::PaperParams params;
    params.n = 8 + 2 * (i % 3);  // 8, 10, 12
    auto inst = std::make_shared<match::workload::AnyInstance>(
        match::workload::make_paper_instance(params, rng));

    for (std::uint64_t seed : {1ull, 2ull}) {
      RequestTemplate t;
      t.instance = inst;
      t.solver = SolverKind::kMatch;
      t.options.seed = seed;
      t.options.max_iterations = 30;
      t.options.deadline_seconds = 0.5;
      templates.push_back(t);

      t.solver = SolverKind::kLocalSearch;
      t.options.max_iterations = 3000;
      templates.push_back(t);
    }

    RequestTemplate list;
    list.instance = inst;
    list.solver = SolverKind::kMinMin;
    list.options.deadline_seconds = 0.25;
    templates.push_back(list);

    RequestTemplate ga;
    ga.instance = inst;
    ga.solver = SolverKind::kGa;
    ga.options.max_iterations = 25;
    ga.options.deadline_seconds = 0.5;
    templates.push_back(ga);

    // A deliberately impossible budget: exercises the deadline-miss
    // accounting path (the solver must still answer with a valid
    // best-so-far mapping).  Unique seed keeps it out of other keys.
    RequestTemplate tight;
    tight.instance = inst;
    tight.solver = SolverKind::kMatch;
    tight.options.seed = 77 + i;
    tight.options.deadline_seconds = 1e-5;
    templates.push_back(tight);
  }
  return templates;
}

struct RunOutcome {
  std::vector<std::size_t> template_of;  ///< request index -> template id
  std::vector<MapResponse> responses;
  ServiceStats stats_after;
};

RunOutcome run_trace(MappingService& service,
                     const std::vector<RequestTemplate>& templates,
                     std::size_t count, double rate, bool open_loop) {
  match::rng::Rng trace_rng(42);
  match::workload::ArrivalParams arrivals_params;
  arrivals_params.count = count;
  arrivals_params.rate = rate;
  const std::vector<double> arrivals =
      match::workload::make_poisson_arrivals(arrivals_params, trace_rng);

  RunOutcome out;
  out.template_of.reserve(count);
  std::vector<std::future<MapResponse>> futures;
  futures.reserve(count);

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < count; ++i) {
    if (open_loop) {
      // Open loop: requests arrive on the trace's clock regardless of
      // how far behind the service is.
      std::this_thread::sleep_until(
          start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(arrivals[i])));
    }
    const std::size_t which = trace_rng.below(templates.size());
    const RequestTemplate& t = templates[which];
    MapRequest request;
    request.id = i;
    request.instance = t.instance;
    request.solver = t.solver;
    request.options = t.options;
    out.template_of.push_back(which);
    futures.push_back(service.submit(std::move(request)));
  }
  out.responses.reserve(count);
  for (auto& f : futures) out.responses.push_back(f.get());
  service.drain();
  out.stats_after = service.stats();
  return out;
}

void print_stats(const char* label, const ServiceStats& s) {
  match::io::Table table({"metric", "value"});
  table.add_row({"submitted", std::to_string(s.submitted)});
  table.add_row({"completed", std::to_string(s.completed)});
  table.add_row({"deadline misses", std::to_string(s.deadline_misses)});
  table.add_row({"coalesced", std::to_string(s.coalesced)});
  table.add_row({"cache hits", std::to_string(s.cache_hits)});
  table.add_row({"cache misses", std::to_string(s.cache_misses)});
  table.add_row({"cache hit rate", match::io::Table::num(s.cache_hit_rate(), 4)});
  table.add_row({"peak queue depth", std::to_string(s.peak_queue_depth)});
  table.add_row({"p50 latency (ms)",
                 match::io::Table::num(1e3 * s.p50_latency_seconds, 4)});
  table.add_row({"p99 latency (ms)",
                 match::io::Table::num(1e3 * s.p99_latency_seconds, 4)});
  table.add_row({"fallback draws", std::to_string(s.fallback_draws)});
  std::cout << "\n-- " << label << " --\n";
  table.print(std::cout);
}

/// Submits one uncached kMatch request, then replays the identical solve
/// (same adapter parameters, same seed) directly through MatchOptimizer
/// and checks that the `iteration` events recorded under the response's
/// run id carry exactly the optimizer's per-iteration γ trajectory.
bool audit_gamma_trajectory(MappingService& service,
                            const match::obs::RingBufferSink& ring,
                            std::shared_ptr<const match::workload::AnyInstance>
                                instance) {
  MapRequest request;
  request.id = 999999;
  request.instance = instance;
  request.solver = SolverKind::kMatch;
  request.options.seed = 4242;
  request.options.max_iterations = 40;
  request.options.use_cache = false;  // force a fresh solver run
  const MapResponse resp = service.submit(std::move(request)).get();
  if (resp.served_by != ServedBy::kSolver || resp.run_id == 0) {
    std::cerr << "FAIL: audit request was not served by a fresh run\n";
    return false;
  }

  // Replay the exact solve the adapter performed (solver_registry.cpp):
  // library-default MatchParams with the request's iteration budget, RNG
  // seeded from options.seed.
  const match::sim::Platform platform = instance->make_platform();
  const match::sim::CostEvaluator eval(instance->tig().tig, platform);
  match::core::MatchParams params;
  params.max_iterations = 40;
  match::core::MatchOptimizer optimizer(eval, params);
  match::rng::Rng rng(4242);
  const match::core::MatchResult direct =
      optimizer.run(match::SolverContext(rng));

  std::vector<double> traced;
  for (const match::obs::Event& e : ring.snapshot()) {
    if (e.kind == match::obs::EventKind::kIteration &&
        e.run_id == resp.run_id) {
      traced.push_back(e.gamma);
    }
  }

  bool ok = traced.size() == direct.history.size();
  for (std::size_t i = 0; ok && i < traced.size(); ++i) {
    ok = traced[i] == direct.history[i].gamma;  // exact, not approximate
  }
  std::cout << "\ntrace audit: " << traced.size()
            << " iteration events under run id " << resp.run_id
            << "; γ trajectory matches MatchOptimizer history exactly: "
            << (ok ? "yes" : "NO") << "\n";
  if (!ok) {
    std::cerr << "FAIL: traced gamma trajectory (" << traced.size()
              << " events) != optimizer history (" << direct.history.size()
              << " iterations)\n";
  }
  return ok;
}

std::atomic<bool> g_stop{false};

extern "C" void handle_stop_signal(int) { g_stop.store(true); }

/// `--listen` mode: serve the wire protocol until a signal or the time
/// budget, then print the admission accounting.
int run_listen_mode(MappingService& service, int listen_port,
                    double serve_seconds, match::obs::EventSink* sink,
                    match::obs::FlightRecorder& recorder) {
  match::net::ServerConfig config;
  config.port = static_cast<std::uint16_t>(listen_port);
  config.sink = sink;
  config.recorder = &recorder;
  match::net::MatchServer server(service, config);
  std::cout << "listening on 127.0.0.1:" << server.port() << std::endl;

  struct sigaction sa {};
  sa.sa_handler = handle_stop_signal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  const auto start = std::chrono::steady_clock::now();
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (serve_seconds > 0.0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start).count() >= serve_seconds) {
      break;
    }
  }
  server.stop();

  const match::net::ServerCounters c = server.counters();
  match::io::Table table({"net counter", "value"});
  table.add_row({"requests", std::to_string(c.requests)});
  table.add_row({"served", std::to_string(c.served)});
  table.add_row({"served (deadline missed)",
                 std::to_string(c.served_deadline_missed)});
  table.add_row({"shed", std::to_string(c.shed)});
  table.add_row({"rejected (deadline)", std::to_string(c.rejected_deadline)});
  table.add_row({"bad request", std::to_string(c.bad_request)});
  table.add_row({"unknown instance", std::to_string(c.unknown_instance)});
  table.add_row({"server error", std::to_string(c.server_error)});
  std::cout << "\n-- admission accounting --\n";
  table.print(std::cout);
  const bool balanced = c.requests == c.terminal();
  std::cout << "requests == served + shed + rejected + errors: "
            << (balanced ? "yes" : "NO") << "\n";
  std::cout << "spans: " << recorder.recorded() << " timeline(s) recorded, "
            << recorder.dropped() << " evicted\n";
  return balanced ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t count = 500;
  double rate = 1000.0;
  const char* trace_path = nullptr;
  int metrics_port = -1;  // -1 = exporter off; 0 = ephemeral
  double linger_seconds = 0.0;
  int listen_port = -1;  // -1 = audit mode; 0 = serve on ephemeral port
  double serve_seconds = 0.0;  // 0 = until SIGINT/SIGTERM
  const char* span_trace_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      count = 120;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      count = 2000;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--span-trace") == 0 && i + 1 < argc) {
      span_trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-port") == 0 && i + 1 < argc) {
      metrics_port = std::atoi(argv[++i]);
      if (metrics_port < 0 || metrics_port > 65535) {
        std::cerr << "--metrics-port wants 0..65535\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--linger") == 0 && i + 1 < argc) {
      linger_seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--listen") == 0 && i + 1 < argc) {
      listen_port = std::atoi(argv[++i]);
      if (listen_port < 0 || listen_port > 65535) {
        std::cerr << "--listen wants 0..65535\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--serve-seconds") == 0 && i + 1 < argc) {
      serve_seconds = std::atof(argv[++i]);
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--quick|--full] [--trace out.jsonl]"
                << " [--metrics-port N] [--linger S]"
                << " [--listen PORT [--serve-seconds S]"
                << " [--span-trace spans.jsonl]]\n";
      return 2;
    }
  }
  if (span_trace_path != nullptr && listen_port < 0) {
    std::cerr << "--span-trace requires --listen (spans are stamped by the "
                 "network server)\n";
    return 2;
  }

  const auto templates = make_templates(8);
  std::cout << "== match_server: " << count << "-request open-loop trace over "
            << templates.size() << " request templates ==\n";

  // The sink chain must outlive the service (ServiceConfig::sink is
  // borrowed).  The ring buffer always runs — it feeds the γ-trajectory
  // audit — and `--trace` tees a JSONL stream on top of it.
  match::obs::RingBufferSink ring(8192);
  std::ofstream trace_file;
  std::unique_ptr<match::obs::JsonlSink> jsonl;
  std::unique_ptr<match::obs::TeeSink> tee;
  match::obs::EventSink* sink = &ring;
  if (trace_path != nullptr) {
    trace_file.open(trace_path);
    if (!trace_file) {
      std::cerr << "cannot open trace file: " << trace_path << "\n";
      return 2;
    }
    jsonl = std::make_unique<match::obs::JsonlSink>(trace_file);
    tee = std::make_unique<match::obs::TeeSink>(jsonl.get(), &ring);
    sink = tee.get();
  }

  match::service::ServiceConfig config;
  config.workers = 4;
  config.cache_capacity = 4096;
  config.sink = sink;
  MappingService service(config);

  // Prometheus exposition over the service registry.  A scrape renders a
  // MetricsSnapshot on the exporter's own thread — a pure observer that
  // can run mid-trace without perturbing any solver.
  std::unique_ptr<match::obs::HttpExposer> exposer;
  if (metrics_port >= 0) {
    match::obs::HttpExposer::Options http;
    http.port = static_cast<std::uint16_t>(metrics_port);
    try {
      exposer = std::make_unique<match::obs::HttpExposer>(
          [&service] {
            return match::obs::to_prometheus(service.metrics().snapshot());
          },
          http);
    } catch (const std::exception& e) {
      std::cerr << "metrics exporter failed to start: " << e.what() << "\n";
      return 2;
    }
    std::cout << "metrics: http://127.0.0.1:" << exposer->port()
              << "/metrics (and /healthz)\n";
  }

  if (listen_port >= 0) {
    // The flight recorder always runs in listen mode: the retention cost
    // is bounded and `/debug/requests` should answer during an incident,
    // not only when tracing was preconfigured.
    match::obs::FlightRecorder recorder;
    std::ofstream span_file;
    if (span_trace_path != nullptr) {
      span_file.open(span_trace_path);
      if (!span_file) {
        std::cerr << "cannot open span trace file: " << span_trace_path
                  << "\n";
        return 2;
      }
      recorder.attach_stream(&span_file);
      std::cout << "span trace: streaming timelines to " << span_trace_path
                << "\n";
    }
    if (exposer) {
      exposer->add_route("/debug/requests", [&recorder] {
        return match::obs::render_debug_requests(recorder);
      });
      std::cout << "debug: http://127.0.0.1:" << exposer->port()
                << "/debug/requests\n";
    }
    const int rc = run_listen_mode(service, listen_port, serve_seconds, sink,
                                   recorder);
    service.shutdown();
    if (span_trace_path != nullptr) {
      recorder.flush_stream();
      recorder.attach_stream(nullptr);  // detach before span_file dies
      std::cout << "span trace: " << recorder.recorded()
                << " timeline(s) written to " << span_trace_path << "\n";
    }
    if (trace_path != nullptr) {
      jsonl->flush();
      std::cout << "trace: " << jsonl->emitted() << " events written to "
                << trace_path << "\n";
    }
    if (exposer) exposer->stop();
    return rc;
  }

  // ---- Run 1: cold cache, open loop. -----------------------------------
  const RunOutcome cold = run_trace(service, templates, count, rate,
                                    /*open_loop=*/true);
  print_stats("cold run", cold.stats_after);

  bool ok = true;
  std::size_t flagged = 0;
  for (std::size_t i = 0; i < cold.responses.size(); ++i) {
    const MapResponse& r = cold.responses[i];
    if (!r.mapping.is_permutation()) {
      std::cerr << "FAIL: request " << i << " returned an invalid mapping\n";
      ok = false;
    }
    const double deadline =
        templates[cold.template_of[i]].options.deadline_seconds;
    if (deadline > 0.0 &&
        (r.total_seconds > deadline) != r.deadline_missed) {
      std::cerr << "FAIL: request " << i
                << " deadline accounting inconsistent (latency "
                << r.total_seconds << "s vs budget " << deadline << "s)\n";
      ok = false;
    }
    if (r.deadline_missed) ++flagged;
  }
  if (flagged != cold.stats_after.deadline_misses) {
    std::cerr << "FAIL: " << flagged << " flagged responses but stats count "
              << cold.stats_after.deadline_misses << "\n";
    ok = false;
  }
  std::cout << "\naccounting: every response met its deadline or is counted "
               "as a miss with a valid mapping: "
            << (ok ? "yes" : "NO") << " (" << flagged << " misses, all "
            << "flagged)\n";

  // ---- Run 2: identical trace against the warm cache. ------------------
  const RunOutcome warm = run_trace(service, templates, count, rate,
                                    /*open_loop=*/false);
  print_stats("warm rerun (cumulative counters)", warm.stats_after);

  const std::size_t warm_hits =
      warm.stats_after.cache_hits - cold.stats_after.cache_hits;
  const std::size_t warm_lookups =
      warm_hits +
      (warm.stats_after.cache_misses - cold.stats_after.cache_misses);
  const double warm_rate =
      warm_lookups == 0
          ? 0.0
          : static_cast<double>(warm_hits) / static_cast<double>(warm_lookups);

  std::size_t compared = 0;
  bool identical = true;
  for (std::size_t i = 0; i < warm.responses.size(); ++i) {
    if (warm.responses[i].served_by != ServedBy::kCache) continue;
    // Compare against the cold run's answer for the same request slot;
    // skip slots whose cold answer was deadline-truncated (those were
    // never cached, so the cache canon comes from a complete run).
    if (cold.responses[i].deadline_missed) continue;
    ++compared;
    if (!(warm.responses[i].mapping == cold.responses[i].mapping)) {
      identical = false;
      std::cerr << "FAIL: request " << i
                << " served from cache differs from the cold-run mapping\n";
    }
  }

  std::cout << "\nwarm rerun: hit rate " << match::io::Table::num(warm_rate, 4)
            << " over " << warm_lookups << " lookups; " << compared
            << " cache-served responses byte-identical to cold run: "
            << (identical ? "yes" : "NO") << "\n";

  if (warm_rate <= 0.5) {
    std::cerr << "FAIL: warm-cache hit rate " << warm_rate << " <= 0.5\n";
    ok = false;
  }
  if (!identical) ok = false;

  // ---- Trace audit: events must reconstruct the solver's history. ------
  if (!audit_gamma_trajectory(service, ring, templates[0].instance)) {
    ok = false;
  }

  service.shutdown();
  if (trace_path != nullptr) {
    jsonl->flush();
    std::cout << "trace: " << jsonl->emitted() << " events written to "
              << trace_path << " (" << ring.dropped()
              << " dropped from the audit ring)\n";
  }
  if (exposer && linger_seconds > 0.0) {
    std::cout << "lingering " << linger_seconds
              << "s for scrapes (curl http://127.0.0.1:" << exposer->port()
              << "/metrics)...\n";
    std::this_thread::sleep_for(std::chrono::duration<double>(linger_seconds));
  }
  if (exposer) {
    std::cout << "metrics: served " << exposer->requests_served()
              << " scrape(s)\n";
    exposer->stop();
  }
  std::cout << "\n" << (ok ? "OK" : "FAILED") << "\n";
  return ok ? 0 : 1;
}
