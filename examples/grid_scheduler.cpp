// Domain example: mapping onto computational grids with different
// interconnect topologies.
//
// The paper assumes a fully-connected resource graph; real grids are
// rings, meshes, stars, or irregular.  This example maps one application
// TIG onto platforms with the same node speeds but different topologies
// (communication cost = cheapest route), showing how topology changes
// both the achievable makespan and the mapping MaTCH picks.
//
//   ./examples/grid_scheduler [n] [seed]    (n must have an integer sqrt
//                                            for the mesh topology)

#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/matchalgo.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "io/table.hpp"
#include "workload/paper_suite.hpp"

namespace {

struct Topology {
  std::string name;
  match::graph::Graph graph;
  match::sim::CommCostPolicy policy;
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 16;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;
  const auto side = static_cast<std::size_t>(std::lround(std::sqrt(
      static_cast<double>(n))));
  if (side * side != n) {
    std::cerr << "n must be a perfect square (mesh topology); got " << n
              << "\n";
    return 2;
  }

  // One application, shared by every platform.
  match::rng::Rng rng(seed);
  match::workload::PaperParams params;
  params.n = n;
  const auto app = match::workload::make_paper_instance(params, rng);

  // Platforms: same processing-cost distribution, different interconnects.
  // Per-node speeds are drawn per topology from the same range, so the
  // comparison is about *shape*, not a fixed hardware set.
  const match::graph::WeightRange node_w{1, 5}, link_w{10, 20};
  std::vector<Topology> topologies;
  topologies.push_back({"complete",
                        match::graph::make_complete(n, node_w, link_w, rng),
                        match::sim::CommCostPolicy::kDirectLinks});
  topologies.push_back({"ring", match::graph::make_ring(n, node_w, link_w, rng),
                        match::sim::CommCostPolicy::kShortestPath});
  topologies.push_back(
      {"mesh " + std::to_string(side) + "x" + std::to_string(side),
       match::graph::make_mesh(side, side, false, node_w, link_w, rng),
       match::sim::CommCostPolicy::kShortestPath});
  topologies.push_back(
      {"torus " + std::to_string(side) + "x" + std::to_string(side),
       match::graph::make_mesh(side, side, true, node_w, link_w, rng),
       match::sim::CommCostPolicy::kShortestPath});
  topologies.push_back({"star", match::graph::make_star(n, node_w, link_w, rng),
                        match::sim::CommCostPolicy::kShortestPath});
  topologies.push_back(
      {"scale-free (BA, m=2)",
       match::graph::make_barabasi_albert(n, 2, node_w, link_w, rng),
       match::sim::CommCostPolicy::kShortestPath});

  std::cout << "application: " << app.name << " (" << n << " tasks, "
            << app.tig.graph().num_edges() << " interactions)\n\n";

  match::io::Table table({"topology", "links", "mean route cost",
                          "MaTCH makespan", "iterations", "mapping time (s)"});
  for (const auto& topo : topologies) {
    const match::sim::Platform platform(
        match::graph::ResourceGraph(topo.graph), topo.policy);
    const match::sim::CostEvaluator eval(app.tig, platform);

    match::core::MatchOptimizer matcher(eval);
    match::rng::Rng run_rng(seed);
    const auto result = matcher.run(match::SolverContext(run_rng));

    double route_sum = 0.0;
    for (match::graph::NodeId a = 0; a < n; ++a) {
      for (match::graph::NodeId b = 0; b < n; ++b) {
        route_sum += platform.comm_cost(a, b);
      }
    }
    const double mean_route =
        route_sum / static_cast<double>(n * (n - 1));

    table.add_row({topo.name, std::to_string(topo.graph.num_edges()),
                   match::io::Table::num(mean_route, 4),
                   match::io::Table::num(result.best_cost),
                   std::to_string(result.iterations),
                   match::io::Table::num(result.elapsed_seconds, 3)});
  }
  table.print(std::cout);

  std::cout << "\nreading: richer interconnects (complete, torus) give the "
               "mapper cheap routes\nbetween any pair, so communication-heavy "
               "neighbors can spread out; sparse\ntopologies (ring, star) "
               "funnel traffic through expensive multi-hop routes and\n"
               "the achievable makespan rises.\n";
  return 0;
}
