// Domain example: keeping a mapping good while the grid degrades.
//
// A long-running data-parallel application is mapped once, then the
// platform changes under it — resources slow down as other users' jobs
// land on them.  After each event we re-map with warm-started CE
// (core/rematch.hpp) and compare against doing nothing and against a
// full cold restart.
//
//   ./examples/dynamic_remap [n] [events] [seed]

#include <cstdlib>
#include <iostream>
#include <memory>

#include "core/rematch.hpp"
#include "io/table.hpp"
#include "sim/metrics.hpp"
#include "sim/perturb.hpp"
#include "workload/paper_suite.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20;
  const std::size_t events =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 11;

  match::rng::Rng rng(seed);
  match::workload::PaperParams params;
  params.n = n;
  const auto instance = match::workload::make_paper_instance(params, rng);

  // Initial mapping on the healthy platform.
  match::graph::ResourceGraph resources = instance.resources;
  match::sim::Platform platform(resources);
  auto eval = std::make_unique<match::sim::CostEvaluator>(instance.tig,
                                                          platform);
  match::rng::Rng opt_rng(seed);
  auto current = match::core::MatchOptimizer(*eval).run(match::SolverContext(opt_rng)).best_mapping;

  std::cout << "dynamic re-mapping on a degrading " << n
            << "-resource grid (" << events << " slowdown events)\n\n";
  match::io::Table table({"event", "slowed resource", "ET stale", "ET warm",
                          "ET cold", "warm iters", "cold iters"});

  for (std::size_t event = 0; event < events; ++event) {
    // A contention event: the currently busiest resource slows 3x.
    const auto victim = eval->evaluate(current).busiest;
    resources = match::sim::scale_processing_cost(resources, victim, 3.0);
    platform = match::sim::Platform(resources);
    eval = std::make_unique<match::sim::CostEvaluator>(instance.tig, platform);

    const double stale = eval->makespan(current);

    match::rng::Rng warm_rng(seed + event);
    match::core::RematchParams rp;
    const auto warm = match::core::rematch(*eval, current, rp, match::SolverContext(warm_rng));

    match::rng::Rng cold_rng(seed + event);
    const auto cold = match::core::MatchOptimizer(*eval).run(match::SolverContext(cold_rng));

    table.add_row({std::to_string(event), "r" + std::to_string(victim),
                   match::io::Table::num(stale),
                   match::io::Table::num(warm.best_cost),
                   match::io::Table::num(cold.best_cost),
                   std::to_string(warm.iterations),
                   std::to_string(cold.iterations)});

    current = warm.best_mapping;  // adopt the warm re-mapping
  }
  table.print(std::cout);

  const auto metrics = match::sim::compute_metrics(*eval, current);
  std::cout << "\nfinal mapping: makespan "
            << match::io::Table::num(metrics.makespan) << ", imbalance "
            << match::io::Table::num(metrics.imbalance, 4)
            << ", cut fraction "
            << match::io::Table::num(metrics.cut_fraction, 4) << "\n";
  std::cout << "reading: warm re-mapping tracks the degrading platform at a "
               "fraction of the cold-restart iterations.\n";
  return 0;
}
