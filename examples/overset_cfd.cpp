// Domain example: the paper's motivating scenario (§2, Fig. 1).
//
// An overset-grid CFD decomposition — dozens of regularly-shaped grids
// overlapping around an irregular 3-D body — becomes a task interaction
// graph: node weight = grid points (computation), edge weight =
// overlapping grid points (communication).  We generate such a workload
// synthetically, map it onto a heterogeneous 16-node "computational
// grid", and compare MaTCH against the library's other heuristics.
//
//   ./examples/overset_cfd [num_grids] [seed]

#include <cstdlib>
#include <iostream>

#include "baselines/ga.hpp"
#include "baselines/local_search.hpp"
#include "core/matchalgo.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "io/table.hpp"
#include "workload/overset.hpp"

int main(int argc, char** argv) {
  const std::size_t num_grids =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 16;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  // 1. Synthesize the overset-grid workload: boxes pulled toward a
  //    central "body", overlap volume -> communication volume.
  match::rng::Rng rng(seed);
  match::workload::OversetParams op;
  op.num_grids = num_grids;
  op.body_pull = 0.55;
  const auto workload = match::workload::make_overset_workload(op, rng);

  const auto tig_stats = match::graph::compute_stats(workload.tig.graph());
  std::cout << "overset CFD workload: " << num_grids << " grids, "
            << tig_stats.edges << " overlaps\n"
            << "  grid points per grid: " << tig_stats.min_node_weight << " - "
            << tig_stats.max_node_weight << " (mean "
            << match::io::Table::num(tig_stats.mean_node_weight, 5) << ")\n"
            << "  computation/communication ratio: "
            << match::io::Table::num(tig_stats.comp_comm_ratio, 4) << "\n\n";

  // 2. The platform: a heterogeneous cluster with per-node speeds 1-5 and
  //    link costs 10-20 (the paper's §5.2 resource model).
  const match::graph::ResourceGraph resources(
      match::graph::make_complete(num_grids, {1, 5}, {10, 20}, rng));
  const match::sim::Platform platform(resources);
  const match::sim::CostEvaluator eval(workload.tig, platform);

  // 3. Map with every heuristic in the library.
  match::io::Table table(
      {"heuristic", "makespan (ET)", "mapping time (s)", "evaluations"});

  match::core::MatchOptimizer matcher(eval);
  match::rng::Rng r1(seed);
  const auto mr = matcher.run(match::SolverContext(r1));
  table.add_row({"MaTCH (CE)", match::io::Table::num(mr.best_cost),
                 match::io::Table::num(mr.elapsed_seconds, 3),
                 std::to_string(mr.iterations * matcher.effective_sample_size())});

  match::baselines::GaParams gp;
  gp.population = 200;
  gp.generations = 300;
  match::rng::Rng r2(seed);
  const auto gr = match::baselines::GaOptimizer(eval, gp).run(match::SolverContext(r2));
  table.add_row({"FastMap-GA", match::io::Table::num(gr.best_cost),
                 match::io::Table::num(gr.elapsed_seconds, 3),
                 std::to_string(gp.population * gp.generations)});

  const auto gc = match::baselines::greedy_constructive(eval);
  table.add_row({"greedy constructive", match::io::Table::num(gc.best_cost),
                 match::io::Table::num(gc.elapsed_seconds, 3),
                 std::to_string(gc.evaluations)});

  match::rng::Rng r3(seed);
  const auto hc = match::baselines::hill_climb(eval, 30000, match::SolverContext(r3));
  table.add_row({"hill climbing", match::io::Table::num(hc.best_cost),
                 match::io::Table::num(hc.elapsed_seconds, 3),
                 std::to_string(hc.evaluations)});

  match::rng::Rng r4(seed);
  match::baselines::SaParams sp;
  sp.steps = 30000;
  const auto sa = match::baselines::simulated_annealing(eval, sp, match::SolverContext(r4));
  table.add_row({"simulated annealing", match::io::Table::num(sa.best_cost),
                 match::io::Table::num(sa.elapsed_seconds, 3),
                 std::to_string(sa.evaluations)});

  match::rng::Rng r5(seed);
  const auto rs = match::baselines::random_search(eval, 30000, match::SolverContext(r5));
  table.add_row({"random search", match::io::Table::num(rs.best_cost),
                 match::io::Table::num(rs.elapsed_seconds, 3),
                 std::to_string(rs.evaluations)});

  table.print(std::cout);

  // 4. Show where the busiest resource's time goes under MaTCH's mapping.
  const auto breakdown = eval.evaluate(mr.best_mapping);
  std::cout << "\nMaTCH mapping: busiest resource r" << breakdown.busiest
            << " (compute "
            << match::io::Table::num(
                   breakdown.loads[breakdown.busiest].compute, 5)
            << " + communication "
            << match::io::Table::num(breakdown.loads[breakdown.busiest].comm, 5)
            << ")\n";
  return 0;
}
