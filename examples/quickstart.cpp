// Quickstart: build a tiny task-interaction graph, a heterogeneous
// platform, run MaTCH, and print the mapping next to a GA baseline.
//
//   ./examples/quickstart [n] [seed]

#include <cstdlib>
#include <iostream>

#include "baselines/ga.hpp"
#include "core/matchalgo.hpp"
#include "io/table.hpp"
#include "workload/paper_suite.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 10;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  // 1. Generate a paper-style instance: |V_t| = |V_r| = n, TIG node
  //    weights 1-10, TIG edge weights 50-100, resource weights 1-5,
  //    link weights 10-20.
  match::rng::Rng rng(seed);
  match::workload::PaperParams params;
  params.n = n;
  const auto instance = match::workload::make_paper_instance(params, rng);

  // 2. Flatten the resource graph into a platform and build the cost
  //    evaluator for the paper's makespan objective (eqs. 1-2).
  const match::sim::Platform platform = instance.make_platform();
  const match::sim::CostEvaluator eval(instance.tig, platform);

  // 3. Run MaTCH with the paper's defaults (rho=0.05, zeta=0.3, N=2n^2).
  match::core::MatchOptimizer matcher(eval);
  match::rng::Rng match_rng(seed);
  const auto match_result = matcher.run(match::SolverContext(match_rng));

  // 4. Run the FastMap-GA baseline (population 500, 1000 generations).
  match::baselines::GaOptimizer ga(eval);
  match::rng::Rng ga_rng(seed);
  const auto ga_result = ga.run(match::SolverContext(ga_rng));

  // 5. Report.
  std::cout << "instance: " << instance.name << " (n = " << n << ")\n\n";

  match::io::Table table({"heuristic", "exec time (ET)", "mapping time (s)",
                          "iterations/generations"});
  table.add_row({"MaTCH", match::io::Table::num(match_result.best_cost),
                 match::io::Table::num(match_result.elapsed_seconds, 3),
                 std::to_string(match_result.iterations)});
  table.add_row({"FastMap-GA", match::io::Table::num(ga_result.best_cost),
                 match::io::Table::num(ga_result.elapsed_seconds, 3),
                 std::to_string(ga_result.generations)});
  table.print(std::cout);

  std::cout << "\nMaTCH mapping (task -> resource):\n  ";
  for (std::size_t t = 0; t < n; ++t) {
    std::cout << t << "->" << match_result.best_mapping.resource_of(
                     static_cast<match::graph::NodeId>(t))
              << (t + 1 < n ? ", " : "\n");
  }
  std::cout << "\nimprovement factor ET_GA / ET_MaTCH = "
            << match::io::Table::num(ga_result.best_cost /
                                     match_result.best_cost, 4)
            << "\n";
  return 0;
}
