// Example: the generic CE driver on a different combinatorial problem.
//
// Section 3 of the paper presents the cross-entropy method as a generic
// COP solver; MaTCH is its specialization to permutation mappings.  This
// example runs the same framework on weighted max-cut and prints the
// Bernoulli parameter vector as it degenerates — the 1-D analogue of the
// paper's Figure 3.
//
//   ./examples/maxcut_ce [n] [seed]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/ce_driver.hpp"
#include "core/maxcut.hpp"
#include "graph/generators.hpp"
#include "io/table.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;

  match::rng::Rng graph_rng(seed);
  const auto g = match::graph::make_gnp(n, 0.3, {1, 1}, {1, 9}, graph_rng);
  std::cout << "max-cut instance: " << n << " nodes, " << g.num_edges()
            << " edges, total weight " << g.total_edge_weight() << "\n\n";

  match::core::MaxCutProblem problem(g);
  match::core::CeDriverParams params;
  params.sample_size = 300;
  params.rho = 0.1;
  params.zeta = 0.7;

  match::rng::Rng rng(seed);
  const auto result = match::core::run_ce(problem, params, match::SolverContext(rng));

  std::cout << "CE converged after " << result.iterations << " iterations"
            << (result.degenerate ? " (degenerate pmf)" : "") << "\n";
  std::cout << "best cut weight: " << -result.best_cost << "\n";
  if (n <= 20) {
    const double optimum = match::core::MaxCutProblem::brute_force_max_cut(g);
    std::cout << "exact optimum:   " << optimum << "  ("
              << (-result.best_cost == optimum ? "matched" : "missed")
              << ")\n";
  }

  std::cout << "\nfinal Bernoulli parameters (P[node on side 1], node 0 "
               "pinned to side 0):\n  ";
  for (std::size_t i = 0; i < problem.probabilities().size(); ++i) {
    std::printf("%.2f ", problem.probabilities()[i]);
  }
  std::cout << "\n\npartition:\n  side 0: ";
  for (std::size_t i = 0; i < result.best.size(); ++i) {
    if (!result.best[i]) std::cout << i << " ";
  }
  std::cout << "\n  side 1: ";
  for (std::size_t i = 0; i < result.best.size(); ++i) {
    if (result.best[i]) std::cout << i << " ";
  }
  std::cout << "\n\nconvergence (gamma = elite threshold on -cut):\n";
  match::io::Table trace({"iteration", "gamma", "best cut so far"});
  for (const auto& h : result.history) {
    if (h.iteration % 3 == 0 || h.iteration + 1 == result.iterations) {
      trace.add_row({std::to_string(h.iteration),
                     match::io::Table::num(h.gamma, 5),
                     match::io::Table::num(-h.best_so_far, 5)});
    }
  }
  trace.print(std::cout);
  return 0;
}
