// match_cli: command-line front end for the library.
//
//   match_cli generate --n 20 --out /tmp/inst [--seed S] [--sparse]
//       Generate a paper-style instance (writes <out>.tig/.res/.meta).
//
//   match_cli info --instance /tmp/inst
//       Print graph statistics of an instance.
//
//   match_cli run --instance /tmp/inst --heuristic match|ga|greedy|hc|sa|random
//                 [--seed S] [--out mapping.txt]
//       Map the instance and optionally save the mapping.
//
//   match_cli eval --instance /tmp/inst --mapping mapping.txt
//       Evaluate a saved mapping (per-resource breakdown).

#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "baselines/clustering.hpp"
#include "baselines/ga.hpp"
#include "baselines/list_heuristics.hpp"
#include "baselines/local_search.hpp"
#include "core/island.hpp"
#include "core/matchalgo.hpp"
#include "graph/algorithms.hpp"
#include "io/table.hpp"
#include "sim/mapping_io.hpp"
#include "sim/metrics.hpp"
#include "workload/paper_suite.hpp"

namespace {

using ArgMap = std::map<std::string, std::string>;

ArgMap parse_args(int argc, char** argv, int first) {
  ArgMap args;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      throw std::runtime_error("expected --flag, got '" + key + "'");
    }
    key = key.substr(2);
    // Boolean flags have no value; value flags consume the next token.
    if (key == "sparse") {
      args[key] = "1";
    } else {
      if (i + 1 >= argc) throw std::runtime_error("missing value for --" + key);
      args[key] = argv[++i];
    }
  }
  return args;
}

std::string require(const ArgMap& args, const std::string& key) {
  const auto it = args.find(key);
  if (it == args.end()) throw std::runtime_error("missing required --" + key);
  return it->second;
}

std::uint64_t seed_of(const ArgMap& args) {
  const auto it = args.find("seed");
  return it == args.end() ? 42 : std::stoull(it->second);
}

int cmd_generate(const ArgMap& args) {
  match::workload::PaperParams params;
  params.n = std::stoul(require(args, "n"));
  params.complete_resources = args.find("sparse") == args.end();
  match::rng::Rng rng(seed_of(args));
  auto inst = match::workload::make_paper_instance(params, rng);
  const std::string out = require(args, "out");
  inst.name = out;
  match::workload::save_instance(out, inst);
  std::cout << "wrote " << out << ".tig / .res / .meta  (n = " << params.n
            << ", " << (params.complete_resources ? "complete" : "sparse")
            << " resource graph)\n";
  return 0;
}

int cmd_info(const ArgMap& args) {
  const auto inst = match::workload::load_instance(require(args, "instance"));
  const auto print_stats = [](const char* label,
                              const match::graph::Graph& g) {
    const auto s = match::graph::compute_stats(g);
    std::cout << label << ": " << s.nodes << " nodes, " << s.edges
              << " edges\n"
              << "  degree " << s.min_degree << "-" << s.max_degree
              << " (mean " << match::io::Table::num(s.mean_degree, 4) << ")\n"
              << "  node weight " << s.min_node_weight << "-"
              << s.max_node_weight << " (mean "
              << match::io::Table::num(s.mean_node_weight, 4) << ")\n"
              << "  edge weight " << s.min_edge_weight << "-"
              << s.max_edge_weight << " (mean "
              << match::io::Table::num(s.mean_edge_weight, 4) << ")\n";
  };
  print_stats("task graph (TIG)", inst.tig.graph());
  print_stats("resource graph", inst.resources.graph());
  std::cout << "comm policy: "
            << (inst.comm_policy == match::sim::CommCostPolicy::kDirectLinks
                    ? "direct links"
                    : "shortest path")
            << "\n";
  return 0;
}

int cmd_run(const ArgMap& args) {
  const auto inst = match::workload::load_instance(require(args, "instance"));
  const auto platform = inst.make_platform();
  const match::sim::CostEvaluator eval(inst.tig, platform);
  const std::string heuristic = require(args, "heuristic");
  match::rng::Rng rng(seed_of(args));

  match::sim::Mapping mapping;
  double cost = 0.0, seconds = 0.0;
  if (heuristic == "match") {
    match::core::MatchOptimizer opt(eval);
    const auto r = opt.run(match::SolverContext(rng));
    mapping = r.best_mapping;
    cost = r.best_cost;
    seconds = r.elapsed_seconds;
    std::cout << "MaTCH: " << r.iterations << " iterations, stopped on "
              << match::core::to_string(r.stop_reason) << "\n";
  } else if (heuristic == "ga") {
    match::baselines::GaOptimizer opt(eval);
    const auto r = opt.run(match::SolverContext(rng));
    mapping = r.best_mapping;
    cost = r.best_cost;
    seconds = r.elapsed_seconds;
  } else if (heuristic == "greedy") {
    const auto r = match::baselines::greedy_constructive(eval);
    mapping = r.best_mapping;
    cost = r.best_cost;
    seconds = r.elapsed_seconds;
  } else if (heuristic == "hc") {
    const auto r = match::baselines::hill_climb(eval, 100000, match::SolverContext(rng));
    mapping = r.best_mapping;
    cost = r.best_cost;
    seconds = r.elapsed_seconds;
  } else if (heuristic == "sa") {
    const auto r =
        match::baselines::simulated_annealing(eval, {}, match::SolverContext(rng));
    mapping = r.best_mapping;
    cost = r.best_cost;
    seconds = r.elapsed_seconds;
  } else if (heuristic == "random") {
    const auto r = match::baselines::random_search(eval, 100000, match::SolverContext(rng));
    mapping = r.best_mapping;
    cost = r.best_cost;
    seconds = r.elapsed_seconds;
  } else if (heuristic == "island") {
    match::core::IslandMatchOptimizer opt(eval);
    const auto r = opt.run(match::SolverContext(rng));
    mapping = r.best_mapping;
    cost = r.best_cost;
    seconds = r.elapsed_seconds;
  } else if (heuristic == "cluster") {
    const auto r = match::baselines::cluster_map_refine(eval, {}, rng);
    mapping = r.best_mapping;
    cost = r.best_cost;
    seconds = r.elapsed_seconds;
  } else if (heuristic == "minmin" || heuristic == "maxmin" ||
             heuristic == "sufferage") {
    const auto rule = heuristic == "minmin"
                          ? match::baselines::ListRule::kMinMin
                          : heuristic == "maxmin"
                                ? match::baselines::ListRule::kMaxMin
                                : match::baselines::ListRule::kSufferage;
    const auto r = match::baselines::list_schedule(eval, rule);
    mapping = r.best_mapping;
    cost = r.best_cost;
    seconds = r.elapsed_seconds;
  } else {
    throw std::runtime_error(
        "unknown heuristic '" + heuristic +
        "' (match|island|ga|greedy|hc|sa|random|cluster|minmin|maxmin|"
        "sufferage)");
  }

  std::cout << heuristic << " makespan " << cost << " in "
            << match::io::Table::num(seconds, 3) << "s\n";
  if (const auto it = args.find("out"); it != args.end()) {
    match::sim::save_mapping(it->second, mapping);
    std::cout << "mapping written to " << it->second << "\n";
  }
  return 0;
}

int cmd_eval(const ArgMap& args) {
  const auto inst = match::workload::load_instance(require(args, "instance"));
  const auto platform = inst.make_platform();
  const match::sim::CostEvaluator eval(inst.tig, platform);
  const auto mapping = match::sim::load_mapping(require(args, "mapping"));
  if (mapping.num_tasks() != inst.tig.num_tasks()) {
    throw std::runtime_error("mapping size does not match instance");
  }
  if (!mapping.is_valid(platform.num_resources())) {
    throw std::runtime_error("mapping names a nonexistent resource");
  }

  const auto r = eval.evaluate(mapping);
  match::io::Table table({"resource", "compute", "communication", "total"});
  for (std::size_t s = 0; s < r.loads.size(); ++s) {
    table.add_row({std::to_string(s),
                   match::io::Table::num(r.loads[s].compute, 6),
                   match::io::Table::num(r.loads[s].comm, 6),
                   match::io::Table::num(r.loads[s].total(), 6)});
  }
  table.print(std::cout);
  std::cout << "\nmakespan " << r.makespan << " (busiest resource r"
            << r.busiest << ")\n";

  const auto metrics = match::sim::compute_metrics(eval, mapping);
  std::cout << "imbalance " << match::io::Table::num(metrics.imbalance, 4)
            << ", cut fraction "
            << match::io::Table::num(metrics.cut_fraction, 4)
            << ", resources used " << metrics.used_resources << "/"
            << platform.num_resources() << ", max tasks/resource "
            << metrics.max_tasks_per_resource << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: match_cli <generate|info|run|eval> [--flags]\n";
    return 2;
  }
  try {
    const std::string command = argv[1];
    const ArgMap args = parse_args(argc, argv, 2);
    if (command == "generate") return cmd_generate(args);
    if (command == "info") return cmd_info(args);
    if (command == "run") return cmd_run(args);
    if (command == "eval") return cmd_eval(args);
    std::cerr << "unknown command '" << command << "'\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
